// Behavioral contract of the g5_* C API across call sequences the real
// library's user codes exercised: repeated runs, partial j updates, range
// changes mid-session, interleaved i batches.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "grape/driver.hpp"
#include "grape/host_reference.hpp"
#include "ic/uniform.hpp"

namespace {

using namespace g5;
using grape::Vec3d;

class CApiBehavior : public ::testing::Test {
 protected:
  void SetUp() override {
    grape::g5_close();
    grape::g5_open();
    src_ = ic::make_uniform_cube(200, -1.0, 1.0, 1.0, 31);
    xj_.resize(3 * src_.size());
    mj_.resize(src_.size());
    for (std::size_t j = 0; j < src_.size(); ++j) {
      xj_[3 * j] = src_.pos()[j].x;
      xj_[3 * j + 1] = src_.pos()[j].y;
      xj_[3 * j + 2] = src_.pos()[j].z;
      mj_[j] = src_.mass()[j];
    }
    grape::g5_set_range(-2.0, 2.0, mj_[0]);
    grape::g5_set_eps_to_all(0.02);
    grape::g5_set_n(static_cast<int>(src_.size()));
    grape::g5_set_xmj(0, static_cast<int>(src_.size()),
                      reinterpret_cast<const double(*)[3]>(xj_.data()),
                      mj_.data());
  }
  void TearDown() override { grape::g5_close(); }

  void run_batch(int ni, double a[][3], double* p) {
    grape::g5_set_xi(ni, reinterpret_cast<const double(*)[3]>(xj_.data()));
    grape::g5_run();
    grape::g5_get_force(ni, a, p);
  }

  model::ParticleSet src_;
  std::vector<double> xj_, mj_;
};

TEST_F(CApiBehavior, RepeatedRunsIdentical) {
  double a1[8][3], a2[8][3], p1[8], p2[8];
  run_batch(8, a1, p1);
  run_batch(8, a2, p2);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a1[i][0], a2[i][0]);
    EXPECT_DOUBLE_EQ(p1[i], p2[i]);
  }
}

TEST_F(CApiBehavior, PartialJUpdateTakesEffect) {
  double before[4][3], after[4][3], p[4];
  run_batch(4, before, p);
  // Move one j-particle far away and zero its mass influence: forces on
  // nearby targets must change.
  double moved[1][3] = {{1.9, 1.9, 1.9}};
  double big_mass[1] = {50.0};
  grape::g5_set_xmj(7, 1, moved, big_mass);
  run_batch(4, after, p);
  bool changed = false;
  for (int i = 0; i < 4; ++i) {
    changed |= std::fabs(after[i][0] - before[i][0]) > 1e-6;
  }
  EXPECT_TRUE(changed);
}

TEST_F(CApiBehavior, RangeChangeRequiresJReupload) {
  double a[4][3], p[4];
  run_batch(4, a, p);
  // Changing the window invalidates resident j; the driver re-flushes the
  // staged set automatically on the next run, so results stay consistent
  // (slightly different quantization grid only).
  grape::g5_set_range(-4.0, 4.0, mj_[0]);
  double a2[4][3], p2[4];
  run_batch(4, a2, p2);
  for (int i = 0; i < 4; ++i) {
    const double scale = std::fabs(a[i][0]) + 1e-12;
    EXPECT_NEAR(a2[i][0], a[i][0], 0.02 * scale + 1e-6) << i;
  }
}

TEST_F(CApiBehavior, InterleavedBatchesIndependent) {
  // Batch A, then batch B with different ni, then re-fetch A's shape:
  // results must reflect the latest xi batch only.
  double a8[8][3], p8[8];
  run_batch(8, a8, p8);
  double a3[3][3], p3[3];
  grape::g5_set_xi(3, reinterpret_cast<const double(*)[3]>(&xj_[3 * 5]));
  grape::g5_run();
  grape::g5_get_force(3, a3, p3);
  // a3[0] corresponds to particle 5: matches the host reference there.
  Vec3d ref;
  double pref;
  const Vec3d xi = src_.pos()[5];
  grape::host_forces_on_targets({&xi, 1}, src_.pos(), src_.mass(), 0.02,
                                {&ref, 1}, {&pref, 1});
  const Vec3d got{a3[0][0], a3[0][1], a3[0][2]};
  EXPECT_LT((got - ref).norm() / ref.norm(), 0.02);
  // Asking for more results than the last batch is an error.
  double abig[8][3], pbig[8];
  EXPECT_THROW(grape::g5_get_force(8, abig, pbig), std::out_of_range);
}

TEST_F(CApiBehavior, ShrinkingNTruncatesJSet) {
  double full[4][3], half[4][3], p[4];
  run_batch(4, full, p);
  // Declare a shorter j-set: only the first 100 sources remain.
  grape::g5_set_n(100);
  grape::g5_set_xmj(0, 100, reinterpret_cast<const double(*)[3]>(xj_.data()),
                    mj_.data());
  run_batch(4, half, p);
  // Verify against the host on the truncated source set.
  Vec3d ref;
  double pref;
  const Vec3d xi = src_.pos()[0];
  grape::host_forces_on_targets(
      {&xi, 1}, std::span<const Vec3d>(src_.pos().data(), 100),
      std::span<const double>(src_.mass().data(), 100), 0.02, {&ref, 1},
      {&pref, 1});
  const Vec3d got{half[0][0], half[0][1], half[0][2]};
  EXPECT_LT((got - ref).norm() / ref.norm(), 0.02);
}

}  // namespace
