#include <gtest/gtest.h>

#include <cmath>

#include "core/blockstep.hpp"
#include "core/diagnostics.hpp"
#include "core/engines.hpp"
#include "core/integrator.hpp"
#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "math/rng.hpp"

namespace {

using namespace g5;
using core::BlockStepConfig;
using core::BlockTimestepIntegrator;
using core::ForceParams;
using math::Vec3d;

// ---------------------------------------------------------------------
// compute_targets contract: only the requested indices change.
// ---------------------------------------------------------------------

TEST(ComputeTargets, OnlyTargetsTouchedAndMatchFullCompute) {
  const auto base = ic::make_plummer(ic::PlummerConfig{.n = 300, .seed = 3});
  const ForceParams fp{.eps = 0.02, .theta = 0.4, .n_crit = 64};

  for (const char* name : {"host-direct", "host-tree-original",
                           "host-tree-modified", "grape-tree",
                           "grape-direct"}) {
    model::ParticleSet full = base;
    auto engine_full = core::make_engine(name, fp);
    engine_full->compute(full);

    model::ParticleSet partial = base;
    // Poison acc/pot so untouched entries are detectable.
    for (auto& a : partial.acc()) a = Vec3d{999.0, 999.0, 999.0};
    for (auto& p : partial.pot()) p = 999.0;
    const std::vector<std::uint32_t> targets{3, 77, 150, 299};
    auto engine_part = core::make_engine(name, fp);
    engine_part->compute_targets(partial, targets);

    for (std::uint32_t t : targets) {
      const double scale = full.acc()[t].norm();
      // Tree subsets use per-target (original) walks while the full
      // evaluation uses grouped lists, so the two agree to tree-error
      // level, not bit-exactly; grape adds its format error.
      EXPECT_LT((partial.acc()[t] - full.acc()[t]).norm(), 0.02 * scale)
          << name << " t=" << t;
      EXPECT_NEAR(partial.pot()[t], full.pot()[t],
                  0.02 * std::fabs(full.pot()[t]))
          << name << " t=" << t;
    }
    // Non-targets untouched.
    EXPECT_EQ(partial.acc()[0], (Vec3d{999.0, 999.0, 999.0})) << name;
    EXPECT_DOUBLE_EQ(partial.pot()[10], 999.0) << name;
  }
}

// ---------------------------------------------------------------------
// Block-timestep integration.
// ---------------------------------------------------------------------

TEST(BlockStep, SingleRungMatchesSharedLeapfrog) {
  // max_rungs = 1: the hierarchy collapses to plain KDK with dt_max.
  auto a = ic::make_plummer(ic::PlummerConfig{.n = 128, .seed = 5});
  auto b = a;
  core::HostDirectEngine ea((ForceParams{.eps = 0.05}));
  core::HostDirectEngine eb((ForceParams{.eps = 0.05}));

  core::LeapfrogIntegrator shared;
  shared.prime(a, ea);
  for (int s = 0; s < 20; ++s) shared.step(a, ea, 0.01);

  BlockStepConfig cfg;
  cfg.dt_max = 0.01;
  cfg.max_rungs = 1;
  BlockTimestepIntegrator block(cfg);
  block.prime(b, eb);
  for (int s = 0; s < 20; ++s) block.step_block(b, eb);

  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT((a.pos()[i] - b.pos()[i]).norm(), 1e-12) << i;
    EXPECT_LT((a.vel()[i] - b.vel()[i]).norm(), 1e-12) << i;
  }
}

TEST(BlockStep, EnergyConservedWithMultipleRungs) {
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 256, .seed = 7});
  core::HostDirectEngine engine((ForceParams{.eps = 0.03}));
  BlockStepConfig cfg;
  cfg.dt_max = 0.04;
  cfg.max_rungs = 4;
  cfg.eta = 0.05;
  BlockTimestepIntegrator block(cfg);
  block.prime(pset, engine);
  const auto e0 = core::diagnose(pset).energy;
  for (int blk = 0; blk < 25; ++blk) block.step_block(pset, engine);
  engine.compute(pset);  // refresh potentials for the energy report
  const auto e1 = core::diagnose(pset).energy;
  EXPECT_LT(core::relative_energy_drift(e1, e0), 5e-3);
}

TEST(BlockStep, RungsSpreadAndSaveForceUpdates) {
  // A centrally concentrated model must populate several rungs (strong
  // central accelerations -> deep rungs; halo -> rung 0) and evaluate
  // fewer forces than the shared-dt_min equivalent.
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 512, .seed = 9});
  core::HostDirectEngine engine((ForceParams{.eps = 0.01}));
  BlockStepConfig cfg;
  cfg.dt_max = 0.05;
  cfg.max_rungs = 5;
  cfg.eta = 0.03;
  BlockTimestepIntegrator block(cfg);
  block.prime(pset, engine);
  for (int blk = 0; blk < 4; ++blk) block.step_block(pset, engine);

  const auto& st = block.stats();
  int rungs_used = 0;
  for (const auto c : st.rung_population) rungs_used += (c > 0) ? 1 : 0;
  EXPECT_GE(rungs_used, 2);
  EXPECT_LT(st.force_updates, st.shared_equivalent);
  EXPECT_EQ(st.blocks, 4u);
}

TEST(BlockStep, TwoBodyTightBinaryStaysBound) {
  // A tight binary inside a sparse halo: the binary needs the deep rungs;
  // with them it survives; the halo coasts on rung 0.
  model::ParticleSet pset;
  const double d = 0.02;
  const double v = std::sqrt(0.5 * 0.5 / d);  // circular, m = 0.5 each
  pset.add(Vec3d{d / 2, 0, 0}, Vec3d{0, v / std::sqrt(2.0), 0}, 0.5);
  pset.add(Vec3d{-d / 2, 0, 0}, Vec3d{0, -v / std::sqrt(2.0), 0}, 0.5);
  // Light distant bystanders.
  math::Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    pset.add(5.0 * rng.on_unit_sphere(), Vec3d{}, 1e-4);
  }
  core::HostDirectEngine engine((ForceParams{.eps = 0.0}));
  BlockStepConfig cfg;
  cfg.dt_max = 0.02;
  cfg.max_rungs = 8;
  cfg.eta = 0.5;  // eps = 0 path uses dt_max as the scale
  BlockTimestepIntegrator block(cfg);
  block.prime(pset, engine);
  for (int blk = 0; blk < 10; ++blk) block.step_block(pset, engine);
  // Binary separation stays within a factor ~2 of the initial one.
  const double sep = (pset.pos()[0] - pset.pos()[1]).norm();
  EXPECT_GT(sep, 0.2 * d);
  EXPECT_LT(sep, 5.0 * d);
  // The binary sits on a deeper rung than the bystanders.
  EXPECT_GT(block.rungs()[0], block.rungs()[5]);
}

TEST(BlockStep, Validation) {
  BlockStepConfig bad;
  bad.dt_max = 0.0;
  EXPECT_THROW(BlockTimestepIntegrator{bad}, std::invalid_argument);
  bad = BlockStepConfig{};
  bad.max_rungs = 0;
  EXPECT_THROW(BlockTimestepIntegrator{bad}, std::invalid_argument);
  bad = BlockStepConfig{};
  bad.eta = -1.0;
  EXPECT_THROW(BlockTimestepIntegrator{bad}, std::invalid_argument);

  BlockTimestepIntegrator ok((BlockStepConfig{}));
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 16, .seed = 1});
  core::HostDirectEngine engine((ForceParams{}));
  EXPECT_THROW(ok.step_block(pset, engine), std::logic_error);
}

}  // namespace
