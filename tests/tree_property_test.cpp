// Property-style sweeps of the treecode across particle distributions and
// parameters: the invariants must hold for any input, not just the
// distributions the unit tests use.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "ic/uniform.hpp"
#include "math/rng.hpp"
#include "tree/groupwalk.hpp"
#include "util/stats.hpp"

namespace {

using namespace g5;
using math::Vec3d;

model::ParticleSet make_distribution(const std::string& kind, std::size_t n,
                                     std::uint64_t seed) {
  if (kind == "uniform") return ic::make_uniform_cube(n, -1.0, 1.0, 1.0, seed);
  if (kind == "plummer") {
    ic::PlummerConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    return ic::make_plummer(cfg);
  }
  if (kind == "clustered") {
    return ic::make_clustered(n, 4, 4.0, 0.1, 1.0, seed);
  }
  if (kind == "line") {
    // Degenerate: collinear points (tree depth stress).
    model::ParticleSet p;
    math::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      p.add(Vec3d{rng.uniform(-1.0, 1.0), 1e-8 * rng.uniform(),
                  1e-8 * rng.uniform()},
            Vec3d{}, 1.0 / static_cast<double>(n));
    }
    return p;
  }
  if (kind == "shell") {
    // Hollow sphere: empty interior cells.
    model::ParticleSet p;
    math::Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      p.add(rng.on_unit_sphere(), Vec3d{}, 1.0 / static_cast<double>(n));
    }
    return p;
  }
  throw std::invalid_argument("unknown distribution " + kind);
}

class DistributionSweep
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(DistributionSweep, TreeInvariantsAndForceAccuracy) {
  const std::string kind = std::get<0>(GetParam());
  const double theta = std::get<1>(GetParam());
  const std::size_t n = 1500;
  const auto pset = make_distribution(kind, n, 23);

  tree::BhTree tree;
  tree.build(pset);

  // Invariant: root mass and COM match the snapshot.
  EXPECT_NEAR(tree.root().mass, pset.total_mass(), 1e-9);
  EXPECT_LT((tree.root().com - pset.center_of_mass()).norm(), 1e-9);

  // Invariant: groups partition the sorted order at any n_crit.
  for (std::uint32_t n_crit : {16u, 200u}) {
    std::uint32_t cursor = 0;
    for (const auto& g :
         tree::collect_groups(tree, tree::GroupConfig{n_crit})) {
      ASSERT_EQ(g.first, cursor);
      cursor += g.count;
    }
    ASSERT_EQ(cursor, n);
  }

  // Invariant: every walk's list masses sum to the total mass.
  tree::InteractionList list;
  const tree::WalkConfig wc{theta};
  for (std::size_t i = 0; i < n; i += 149) {
    tree::walk_original(tree, tree.sorted_pos()[i], wc, list);
    double m = 0.0;
    for (double mm : list.mass) m += mm;
    ASSERT_NEAR(m, pset.total_mass(), 1e-9) << kind << " " << i;
  }

  // Accuracy: modified-walk forces against direct summation. Errors are
  // normalized by the rms force magnitude, not per particle — symmetric
  // configurations (the line, the shell interior) have near-cancelling
  // forces for which a per-particle relative error is ill-posed.
  const double eps = 0.01;
  util::RunningStat err_abs, ref_mag;
  for (const auto& g : tree::collect_groups(tree, tree::GroupConfig{128})) {
    tree::walk_group(tree, g, wc, list);
    std::vector<Vec3d> acc(g.count), ref(g.count);
    std::vector<double> pot(g.count), pref(g.count);
    const std::span<const Vec3d> targets(tree.sorted_pos().data() + g.first,
                                         g.count);
    tree::evaluate_list_host(list, targets, eps, acc, pot);
    grape::host_forces_on_targets(targets, tree.sorted_pos(),
                                  tree.sorted_mass(), eps, ref, pref);
    for (std::uint32_t k = 0; k < g.count; ++k) {
      err_abs.add((acc[k] - ref[k]).norm());
      ref_mag.add(ref[k].norm());
    }
  }
  const double normalized = err_abs.rms() / std::max(ref_mag.rms(), 1e-300);
  // theta-scaled bound: rms tree error ~ O(theta^2-ish); generous caps.
  const double cap = theta <= 0.5 ? 0.01 : 0.04;
  EXPECT_LT(normalized, cap) << kind << " theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, DistributionSweep,
    ::testing::Combine(::testing::Values("uniform", "plummer", "clustered",
                                         "line", "shell"),
                       ::testing::Values(0.5, 0.9)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_theta" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
    });

class NcritSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NcritSweep, InteractionCountsGrowWithGroupSize) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 4000, .seed = 29});
  tree::BhTree tree;
  tree.build(pset);
  const std::uint32_t n_crit = GetParam();
  tree::WalkStats stats;
  const tree::WalkConfig wc{0.75};
  for (const auto& g : tree::collect_groups(tree, tree::GroupConfig{n_crit})) {
    tree::count_group(tree, g, wc, &stats);
  }
  // Interactions bounded below by the original-algorithm count and above
  // by N^2 (direct).
  tree::WalkStats orig;
  for (std::size_t i = 0; i < pset.size(); ++i) {
    tree::count_original(tree, tree.sorted_pos()[i], wc, &orig);
  }
  EXPECT_GE(stats.interactions, orig.interactions);
  EXPECT_LE(stats.interactions,
            static_cast<std::uint64_t>(pset.size()) * pset.size());
  // Every particle's group contains it exactly once: sum of group counts.
  EXPECT_EQ(stats.lists,
            tree::collect_groups(tree, tree::GroupConfig{n_crit}).size());
}

INSTANTIATE_TEST_SUITE_P(Range, NcritSweep,
                         ::testing::Values(1u, 8u, 64u, 512u, 4096u));

}  // namespace
