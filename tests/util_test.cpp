#include <gtest/gtest.h>

#include "util/options.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using g5::util::Histogram;
using g5::util::Options;
using g5::util::RunningStat;

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.rms(), std::sqrt(30.0 / 4.0), 1e-12);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.37) * 5.0 + 1.0;
    (i < 37 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_NEAR(a.rms(), all.rms(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Histogram, LinearBinning) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(h.count(b), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  h.add(-1.0);
  h.add(10.0);  // hi edge counts as overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, LogBinningAndQuantile) {
  Histogram h(1e-4, 1.0, 4, Histogram::Scale::Log10);
  h.add(3e-4);  // bin 0
  h.add(3e-3);  // bin 1
  h.add(3e-2);  // bin 2
  h.add(3e-1);  // bin 3
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(h.count(b), 1u) << b;
  EXPECT_NEAR(h.bin_lo(1), 1e-3, 1e-12);
  // Non-positive samples land in underflow rather than NaN.
  h.add(0.0);
  EXPECT_EQ(h.underflow(), 1u);
  const double q50 = h.quantile(0.5);
  EXPECT_GT(q50, 1e-4);
  EXPECT_LT(q50, 1.0);
}

TEST(Options, ParsesAllForms) {
  // Note `--key value` greedily binds the next non-option token, so a
  // positional argument must not directly follow a boolean flag.
  const char* argv[] = {"prog",      "positional", "--n=100",
                        "--theta",   "0.5",        "--verbose=true",
                        "--flag"};
  Options opt(7, argv);
  EXPECT_EQ(opt.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(opt.get_double("theta", 0.0), 0.5);
  EXPECT_TRUE(opt.get_bool("verbose", false));
  EXPECT_TRUE(opt.get_bool("flag", false));
  EXPECT_FALSE(opt.get_bool("absent", false));
  ASSERT_EQ(opt.positional().size(), 1u);
  EXPECT_EQ(opt.positional()[0], "positional");
}

TEST(Options, GreedyValueBinding) {
  const char* argv[] = {"prog", "--verbose", "maybe"};
  Options opt(3, argv);
  EXPECT_EQ(opt.get_string("verbose", ""), "maybe");
  EXPECT_TRUE(opt.positional().empty());
}

TEST(Options, TypeErrorsThrow) {
  const char* argv[] = {"prog", "--n=abc", "--b=maybe"};
  Options opt(3, argv);
  EXPECT_THROW((void)opt.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)opt.get_bool("b", false), std::invalid_argument);
  EXPECT_EQ(opt.get_string("n", ""), "abc");
}

TEST(Table, AlignedRendering) {
  g5::util::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Format, HumanReadable) {
  EXPECT_EQ(g5::util::human_flops(5.92e9), "5.92 Gflops");
  EXPECT_EQ(g5::util::human_flops(109.44e9), "109.44 Gflops");
  EXPECT_NE(g5::util::human_seconds(30141.0).find("8.37 h"),
            std::string::npos);
  EXPECT_EQ(g5::util::sci(2.90e13, 3), "2.90e+13");
}

TEST(Timer, StopwatchMonotonic) {
  g5::util::Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  const double t1 = w.elapsed();
  EXPECT_GE(t1, 0.0);
  w.lap();
  EXPECT_GE(w.total(), t1 * 0.5);
  w.reset();
  EXPECT_EQ(w.total(), 0.0);
}

}  // namespace
