// The Mac::Bmax acceptance-criterion variant (Barnes' tighter opening
// test) against the classic edge criterion.
#include <gtest/gtest.h>

#include <cmath>

#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "tree/groupwalk.hpp"
#include "util/stats.hpp"

namespace {

using namespace g5;
using math::Vec3d;

struct MacFixture {
  model::ParticleSet pset;
  tree::BhTree tree;
  MacFixture() {
    pset = ic::make_plummer(ic::PlummerConfig{.n = 3000, .seed = 31});
    tree.build(pset);
  }
};

TEST(MacVariant, BmaxShortensLists) {
  MacFixture f;
  tree::WalkStats edge_stats, bmax_stats;
  tree::InteractionList list;
  for (std::size_t i = 0; i < f.pset.size(); i += 37) {
    tree::walk_original(f.tree, f.tree.sorted_pos()[i],
                        {0.75, tree::Mac::Edge}, list, &edge_stats);
    tree::walk_original(f.tree, f.tree.sorted_pos()[i],
                        {0.75, tree::Mac::Bmax}, list, &bmax_stats);
  }
  // A Plummer model has sparse outer cells whose bradius << edge: the
  // bmax criterion accepts them earlier.
  EXPECT_LT(bmax_stats.list_entries, edge_stats.list_entries);
}

TEST(MacVariant, BmaxErrorControlledByTheta) {
  // The bounding radius is a smaller measure than the edge, so at equal
  // theta bmax accepts earlier (shorter lists, larger error). The knob
  // still works: error falls monotonically with theta and a tighter theta
  // recovers edge-criterion accuracy with a shorter list.
  MacFixture f;
  tree::InteractionList list;
  const double eps = 0.01;
  auto rms_err_and_len = [&](tree::Mac mac, double theta, double& mean_len) {
    util::RunningStat err;
    std::uint64_t entries = 0, lists = 0;
    for (std::size_t i = 0; i < f.pset.size(); i += 53) {
      const Vec3d target = f.tree.sorted_pos()[i];
      Vec3d ref{};
      double pref = 0.0;
      grape::host_forces_on_targets({&target, 1}, f.pset.pos(),
                                    f.pset.mass(), eps, {&ref, 1},
                                    {&pref, 1});
      tree::walk_original(f.tree, target, {theta, mac}, list);
      entries += list.size();
      ++lists;
      Vec3d acc;
      double pot;
      tree::evaluate_list_host(list, {&target, 1}, eps, {&acc, 1}, {&pot, 1});
      err.add((acc - ref).norm() / ref.norm());
    }
    mean_len = static_cast<double>(entries) / static_cast<double>(lists);
    return err.rms();
  };

  double len_loose = 0.0, len_tight = 0.0, len_edge = 0.0;
  const double bmax_loose = rms_err_and_len(tree::Mac::Bmax, 0.75, len_loose);
  const double bmax_tight = rms_err_and_len(tree::Mac::Bmax, 0.35, len_tight);
  const double edge_ref = rms_err_and_len(tree::Mac::Edge, 0.75, len_edge);

  EXPECT_LT(bmax_tight, bmax_loose);        // theta still controls error
  EXPECT_LT(bmax_tight, 1.5 * edge_ref);    // tight bmax ~ edge accuracy...
  EXPECT_LT(len_tight, 3.0 * len_edge);     // ...without exploding the list
}

TEST(MacVariant, GroupWalkSupportsBmax) {
  MacFixture f;
  tree::InteractionList list;
  tree::WalkStats edge_stats, bmax_stats;
  for (const auto& g :
       tree::collect_groups(f.tree, tree::GroupConfig{128})) {
    tree::count_group(f.tree, g, {0.75, tree::Mac::Edge}, &edge_stats);
    tree::count_group(f.tree, g, {0.75, tree::Mac::Bmax}, &bmax_stats);
  }
  EXPECT_LT(bmax_stats.list_entries, edge_stats.list_entries);
  // Mass closure still holds under the variant criterion.
  const auto groups = tree::collect_groups(f.tree, tree::GroupConfig{128});
  tree::walk_group(f.tree, groups[0], {0.75, tree::Mac::Bmax}, list);
  double m = 0.0;
  for (double mm : list.mass) m += mm;
  EXPECT_NEAR(m, 1.0, 1e-12);
}

TEST(MacVariant, PointMassCellDegenerate) {
  // A cell whose members coincide has bradius ~ 0: bmax accepts it at any
  // distance (it IS a point mass), edge keeps opening it. Build a scene
  // with two tight clumps far apart.
  model::ParticleSet p;
  for (int i = 0; i < 20; ++i) {
    p.add(Vec3d{0.0 + 1e-9 * i, 0.0, 0.0}, Vec3d{}, 1.0);
    p.add(Vec3d{100.0 + 1e-9 * i, 0.0, 0.0}, Vec3d{}, 1.0);
  }
  tree::BhTree tree;
  tree.build(p);
  tree::InteractionList edge_list, bmax_list;
  const Vec3d target{0.0, 0.0, 0.0};
  tree::walk_original(tree, target, {0.75, tree::Mac::Edge}, edge_list);
  tree::walk_original(tree, target, {0.75, tree::Mac::Bmax}, bmax_list);
  EXPECT_LE(bmax_list.size(), edge_list.size());
  // The far clump must collapse to very few terms under bmax.
  std::size_t far_terms = 0;
  for (std::size_t k = 0; k < bmax_list.size(); ++k) {
    if (bmax_list.pos[k].x > 50.0) ++far_terms;
  }
  EXPECT_LE(far_terms, 2u);
}

}  // namespace
