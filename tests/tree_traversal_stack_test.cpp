// Guarded traversal stacks and the deep-tree paths that used to be UB:
// the fixed 512-entry DFS arrays were replaced by TraversalStack (inline
// fast path + heap spill), morton_octant no longer shifts by a negative
// amount past the key resolution, and the builder clamps max_depth to
// what Morton keys can actually resolve.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "math/morton.hpp"
#include "tree/groupwalk.hpp"
#include "tree/traversal_stack.hpp"
#include "tree/tree.hpp"
#include "tree/walk.hpp"

namespace {

using namespace g5;
using tree::TraversalStack;

TEST(DfsStackBound, MatchesOctreeWorstCase) {
  EXPECT_EQ(tree::dfs_stack_bound(0), 8u);
  EXPECT_EQ(tree::dfs_stack_bound(-3), 8u);
  EXPECT_EQ(tree::dfs_stack_bound(1), 15u);
  EXPECT_EQ(tree::dfs_stack_bound(21), 7u * 21u + 8u);
  // The inline capacity covers the deepest Morton-built tree.
  EXPECT_GE(TraversalStack::kInlineCapacity,
            tree::dfs_stack_bound(math::kMortonBitsPerDim));
}

TEST(TraversalStack, LifoThroughInlineRegion) {
  TraversalStack s;
  EXPECT_TRUE(s.empty());
  for (std::int32_t v = 0; v < 100; ++v) s.push(v);
  EXPECT_EQ(s.size(), 100u);
  for (std::int32_t v = 99; v >= 0; --v) ASSERT_EQ(s.pop(), v);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.max_size(), 100u);
}

TEST(TraversalStack, SpillsPastInlineCapacityAndOld512Bound) {
  // Push far past both the inline capacity and the 512 entries the old
  // fixed arrays held — the regression this class exists to prevent.
  constexpr std::int32_t kCount = 5000;
  static_assert(kCount > 512);
  static_assert(static_cast<std::size_t>(kCount) >
                TraversalStack::kInlineCapacity);
  TraversalStack s;
  for (std::int32_t v = 0; v < kCount; ++v) s.push(v * 3 + 1);
  EXPECT_EQ(s.size(), static_cast<std::size_t>(kCount));
  for (std::int32_t v = kCount - 1; v >= 0; --v) {
    ASSERT_EQ(s.pop(), v * 3 + 1) << v;
  }
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.max_size(), static_cast<std::size_t>(kCount));
}

TEST(TraversalStack, InterleavedPushPopAcrossSpillBoundary) {
  TraversalStack s;
  const auto cap = static_cast<std::int32_t>(TraversalStack::kInlineCapacity);
  for (std::int32_t v = 0; v < cap - 1; ++v) s.push(v);
  // Oscillate across the inline/spill boundary.
  for (int round = 0; round < 10; ++round) {
    s.push(1000 + round);
    s.push(2000 + round);
    s.push(3000 + round);
    ASSERT_EQ(s.pop(), 3000 + round);
    ASSERT_EQ(s.pop(), 2000 + round);
  }
  for (int round = 9; round >= 0; --round) ASSERT_EQ(s.pop(), 1000 + round);
  ASSERT_EQ(s.size(), static_cast<std::size_t>(cap - 1));
}

TEST(MortonOctant, BeyondKeyResolutionIsZeroNotUB) {
  const std::uint64_t key = math::morton_encode(
      math::kMortonCoordMax, math::kMortonCoordMax, math::kMortonCoordMax);
  EXPECT_EQ(math::morton_octant(key, math::kMortonBitsPerDim - 1), 7u);
  // These levels used to compute a negative shift count.
  EXPECT_EQ(math::morton_octant(key, math::kMortonBitsPerDim), 0u);
  EXPECT_EQ(math::morton_octant(key, 100), 0u);
}

/// Adversarially clustered snapshot: a tight knot whose extent is far
/// below the Morton cell size at max depth (so the builder is pushed to
/// its depth cap), plus a broad shell that keeps the root cube large.
model::ParticleSet clustered_set() {
  model::ParticleSet pset;
  const math::Vec3d knot{0.4999999, 0.4999999, 0.4999999};
  for (int i = 0; i < 64; ++i) {
    const double d = 1e-13 * static_cast<double>(i);
    pset.add({knot.x + d, knot.y - d, knot.z + 0.5 * d}, {}, 1.0 / 128.0);
  }
  // Exactly coincident bodies: no depth of splitting can separate these.
  for (int i = 0; i < 8; ++i) pset.add(knot, {}, 1.0 / 128.0);
  for (int i = 0; i < 56; ++i) {
    const double t = static_cast<double>(i);
    pset.add({std::cos(t), std::sin(t), std::cos(2.0 * t)}, {}, 1.0 / 128.0);
  }
  return pset;
}

TEST(DeepTree, BuildClampsConfiguredDepthToMortonResolution) {
  const auto pset = clustered_set();
  tree::BhTree tree;
  tree::TreeBuildConfig cfg;
  cfg.leaf_max = 1;      // force maximal splitting
  cfg.max_depth = 1000;  // far beyond what a Morton key can resolve
  tree.build(pset, cfg);
  ASSERT_FALSE(tree.empty());
  int deepest = 0;
  for (const auto& node : tree.nodes()) {
    deepest = std::max(deepest, static_cast<int>(node.depth));
  }
  EXPECT_LT(deepest, math::kMortonBitsPerDim);
  std::size_t covered = 0;
  for (const auto& node : tree.nodes()) {
    if (node.leaf) covered += node.count;
  }
  EXPECT_EQ(covered, pset.size());
}

TEST(DeepTree, WalksTraverseMaximallyDeepTree) {
  // Regression for the unguarded stacks: walk a leaf_max = 1 tree of
  // clustered + coincident bodies, original and grouped, and check the
  // list masses are conserved. Under UBSan the old code trips here.
  const auto pset = clustered_set();
  tree::BhTree tree;
  tree::TreeBuildConfig cfg;
  cfg.leaf_max = 1;
  cfg.max_depth = 1000;
  tree.build(pset, cfg);

  const tree::WalkConfig walk_cfg{.theta = 0.01};  // open nearly everything
  tree::InteractionList list;
  double total_mass = 0.0;
  for (double m : pset.mass()) total_mass += m;

  tree::walk_original(tree, pset.pos()[0], walk_cfg, list);
  double list_mass = 0.0;
  for (double m : list.mass) list_mass += m;
  EXPECT_NEAR(list_mass, total_mass, 1e-12);

  const auto groups = tree::collect_groups(tree, tree::GroupConfig{4});
  ASSERT_FALSE(groups.empty());
  std::size_t grouped = 0;
  for (const auto& g : groups) grouped += g.count;
  EXPECT_EQ(grouped, pset.size());
  for (const auto& g : groups) {
    tree::walk_group(tree, g, walk_cfg, list);
    list_mass = 0.0;
    for (double m : list.mass) list_mass += m;
    ASSERT_NEAR(list_mass, total_mass, 1e-12);
  }
}

}  // namespace
