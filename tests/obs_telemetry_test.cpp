// Telemetry sampler + exporters: the status-file/Prometheus pipeline.
// In the TSan CI job's filter — the sampler thread reads the registry
// and flight recorder while the simulation writes them.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/engines.hpp"
#include "core/simulation.hpp"
#include "ic/plummer.hpp"
#include "obs/obs.hpp"

namespace {

using namespace g5;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class ObsTelemetryEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset_phases();
    obs::Registry::instance().reset_values();
    obs::FlightRecorder::instance().clear();
  }
  void TearDown() override {
    obs::FlightRecorder::instance().disarm();
    obs::FlightRecorder::instance().clear();
    obs::set_enabled(false);
  }
};

using ObsTelemetry = ObsTelemetryEnv;

TEST_F(ObsTelemetry, WritesStatusAndPrometheusFiles) {
  obs::counter("g5.test.ticks").add(3);
  obs::gauge("g5.test.level").set(1.5);
  obs::histogram("g5.test.lat_us").observe(100.0);

  const std::string status = ::testing::TempDir() + "telemetry_status.json";
  const std::string prom = ::testing::TempDir() + "telemetry_prom.txt";
  obs::TelemetryConfig tc;
  tc.period_ms = 3600 * 1000;  // first sample is immediate; no ticks after
  tc.status_path = status;
  tc.prom_path = prom;
  {
    obs::Telemetry telemetry(tc);
    // Construction takes an eager first sample.
    EXPECT_GE(telemetry.samples(), 1u);
    telemetry.stop();
    telemetry.stop();  // clean double-stop
  }
  const std::string doc = slurp(status);
  EXPECT_NE(doc.find("\"schema\":\"g5.status.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"heartbeat\""), std::string::npos);
  EXPECT_NE(doc.find("\"g5.test.ticks\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"g5.test.level\":1.5"), std::string::npos);

  const std::string text = slurp(prom);
  EXPECT_NE(text.find("# TYPE g5_test_ticks counter"), std::string::npos);
  EXPECT_NE(text.find("g5_test_ticks 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g5_test_level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g5_test_lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("g5_test_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("g5_test_lat_us_count 1"), std::string::npos);
  std::remove(status.c_str());
  std::remove(prom.c_str());
}

TEST_F(ObsTelemetry, StatusSequenceAdvancesPerSample) {
  const std::string status = ::testing::TempDir() + "telemetry_seq.json";
  obs::TelemetryConfig tc;
  tc.period_ms = 3600 * 1000;
  tc.status_path = status;
  obs::Telemetry telemetry(tc);
  telemetry.sample_now();
  const std::string a = slurp(status);
  telemetry.sample_now();
  const std::string b = slurp(status);
  telemetry.stop();
  const auto seq_of = [](const std::string& doc) {
    const std::size_t at = doc.find("\"sequence\":");
    return doc.substr(at, doc.find(',', at) - at);
  };
  EXPECT_NE(seq_of(a), seq_of(b));
  std::remove(status.c_str());
}

TEST_F(ObsTelemetry, StatusReportsHeartbeatAndLastStep) {
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 128, .seed = 3});
  core::HostTreeEngine engine(
      core::ForceParams{.eps = 0.05, .theta = 0.75, .n_crit = 32},
      core::HostTreeEngine::Mode::Modified);
  core::SimulationConfig cfg;
  cfg.dt = 0.01;
  cfg.steps = 5;
  core::Simulation sim(engine, cfg);

  const std::string status = ::testing::TempDir() + "telemetry_hb.json";
  obs::TelemetryConfig tc;
  tc.period_ms = 3600 * 1000;
  tc.status_path = status;
  obs::Telemetry telemetry(tc);
  sim.run(pset);
  telemetry.stop();  // final sample sees the finished run

  const std::string doc = slurp(status);
  EXPECT_NE(doc.find("\"step\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"steps_total\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"last_step\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"flight\""), std::string::npos);
  EXPECT_EQ(obs::FlightRecorder::instance().step_count(), 5u);
  std::remove(status.c_str());
}

TEST_F(ObsTelemetry, SamplerDoesNotPerturbPhysics) {
  // Bitwise determinism with the sampler on vs off: telemetry only ever
  // reads, so two identical runs must land on identical particles.
  const auto run_once = [](bool with_sampler) {
    auto pset = ic::make_plummer(ic::PlummerConfig{.n = 96, .seed = 11});
    core::HostTreeEngine engine(
        core::ForceParams{.eps = 0.05, .theta = 0.75, .n_crit = 32},
        core::HostTreeEngine::Mode::Modified);
    core::SimulationConfig cfg;
    cfg.dt = 0.01;
    cfg.steps = 8;
    core::Simulation sim(engine, cfg);
    if (with_sampler) {
      obs::TelemetryConfig tc;
      tc.period_ms = 1;  // sample as fast as possible during the run
      tc.status_path = ::testing::TempDir() + "telemetry_phys.json";
      obs::Telemetry telemetry(tc);
      sim.run(pset);
      telemetry.stop();
      std::remove(tc.status_path.c_str());
    } else {
      sim.run(pset);
    }
    return pset;
  };
  const auto baseline = run_once(false);
  obs::FlightRecorder::instance().clear();
  const auto sampled = run_once(true);
  ASSERT_EQ(baseline.size(), sampled.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline.pos()[i].x, sampled.pos()[i].x) << i;
    EXPECT_EQ(baseline.pos()[i].y, sampled.pos()[i].y) << i;
    EXPECT_EQ(baseline.pos()[i].z, sampled.pos()[i].z) << i;
    EXPECT_EQ(baseline.vel()[i].x, sampled.vel()[i].x) << i;
  }
}

TEST_F(ObsTelemetry, AtomicWriteLeavesNoTempBehind) {
  const std::string path = ::testing::TempDir() + "telemetry_atomic.json";
  ASSERT_TRUE(obs::atomic_write_file(path, "{\"ok\": true}\n"));
  EXPECT_EQ(slurp(path), "{\"ok\": true}\n");
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST_F(ObsTelemetry, StepMetricsJsonMatchesWriterOutput) {
  // The status file's last_step object and the JSONL sink must be the
  // same serialization (one format, two consumers).
  obs::StepMetrics m;
  m.step = 42;
  m.t_sim = 0.42;
  m.wall_s = 0.125;
  m.interactions = 1000;
  m.energy_drift = 1.5e-6;
  const std::string path = ::testing::TempDir() + "telemetry_jsonl_eq.jsonl";
  {
    obs::MetricsWriter writer(path);
    writer.write(m);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, obs::step_metrics_json(m));
  std::remove(path.c_str());
}

// Satellite: the JSONL sink flushes per record, so a process killed
// mid-run leaves only complete lines behind.
TEST_F(ObsTelemetry, MetricsJsonlSurvivesSigkill) {
  const std::string path = ::testing::TempDir() + "telemetry_kill.jsonl";
  std::remove(path.c_str());
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: write records, then die without any chance to flush or
    // run destructors. _Exit paths are not enough — SIGKILL it is.
    obs::MetricsWriter writer(path);
    for (std::uint64_t s = 1; s <= 17; ++s) {
      obs::StepMetrics m;
      m.step = s;
      m.interactions = s * 10;
      writer.write(m);
    }
    ::raise(SIGKILL);
    ::_exit(99);  // unreachable
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  std::ifstream in(path);
  std::string line;
  std::uint64_t expect_step = 1;
  while (std::getline(in, line)) {
    // Every line is complete: starts a record, ends the object.
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    obs::StepMetrics m;
    m.step = expect_step;
    m.interactions = expect_step * 10;
    EXPECT_EQ(line, obs::step_metrics_json(m));
    ++expect_step;
  }
  EXPECT_EQ(expect_step, 18u);  // all 17 records survived the kill
  std::remove(path.c_str());
}

}  // namespace
