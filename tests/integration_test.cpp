// Cross-module integration tests: the full paper pipeline at miniature
// scale — ICs -> treecode on emulated GRAPE-5 -> integration -> snapshot
// -> operation-count correction.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/engines.hpp"
#include "core/perf.hpp"
#include "core/simulation.hpp"
#include "core/snapshot.hpp"
#include "ic/galaxy.hpp"
#include "ic/plummer.hpp"
#include "ic/zeldovich.hpp"
#include "model/units.hpp"
#include "tree/groupwalk.hpp"

namespace {

using namespace g5;
using core::ForceParams;

TEST(Integration, MiniPaperRunEndToEnd) {
  // The whole Section 5 pipeline at grid 8 (a few hundred particles).
  ic::CosmologicalSphereConfig cc;
  cc.grid_n = 8;
  cc.seed = 5;
  const auto icr = ic::make_cosmological_sphere(cc);
  model::ParticleSet pset = icr.particles;
  ASSERT_GT(pset.size(), 100u);
  const double G = model::gravitational_constant();
  for (auto& m : pset.mass()) m *= G;

  ForceParams fp;
  fp.eps = 0.05 * icr.box_size / 8.0;
  fp.theta = 0.75;
  fp.n_crit = 64;
  auto engine = core::make_engine("grape-tree", fp);

  const model::Cosmology cosmo(cc.cosmo);
  core::SimulationConfig sc;
  sc.dt_schedule = cosmo.log_a_timesteps(icr.a_start, 1.0, 24);
  sc.log_every = 0;
  core::Simulation sim(*engine, sc);
  const auto s = sim.run(pset);

  EXPECT_EQ(s.steps, 24u);
  EXPECT_GT(s.engine.interactions, pset.size() * 24u);
  EXPECT_GT(s.grape.interactions, 0u);
  // The sphere expanded roughly with the background (x25 in scale factor).
  double rms = 0.0;
  for (const auto& p : pset.pos()) rms += p.norm2();
  rms = std::sqrt(rms / static_cast<double>(pset.size()));
  const double rms0 = icr.a_start * icr.sphere_radius * 0.62;  // ~<r^2>^0.5
  EXPECT_GT(rms, 10.0 * rms0);
  EXPECT_LT(rms, 60.0 * rms0);
}

TEST(Integration, ModifiedVsOriginalCountRatio) {
  // Section 5's correction: the modified algorithm evaluates several
  // times more interactions than the original at equal theta.
  ic::CosmologicalSphereConfig cc;
  cc.grid_n = 16;
  cc.seed = 7;
  const auto icr = ic::make_cosmological_sphere(cc);

  tree::BhTree tree;
  tree.build(icr.particles);
  const tree::WalkConfig wc{0.75};
  tree::WalkStats modified, original;
  for (const auto& g : tree::collect_groups(tree, tree::GroupConfig{256})) {
    tree::count_group(tree, g, wc, &modified);
  }
  for (std::size_t i = 0; i < icr.particles.size(); ++i) {
    tree::count_original(tree, tree.sorted_pos()[i], wc, &original);
  }
  const double ratio = static_cast<double>(modified.interactions) /
                       static_cast<double>(original.interactions);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 30.0);
  // And the modified algorithm visits far fewer nodes (the host saving).
  EXPECT_LT(modified.nodes_visited, original.nodes_visited / 10);
}

TEST(Integration, SnapshotRestartContinuity) {
  // Run 10 steps; save at 5; restart from the snapshot and verify the
  // second half reproduces the direct run bit-for-bit (same engine).
  auto make_engine_ = [] {
    return core::make_engine("host-tree-modified",
                             ForceParams{.eps = 0.05, .theta = 0.5,
                                         .n_crit = 32});
  };
  model::ParticleSet pset =
      ic::make_plummer(ic::PlummerConfig{.n = 200, .seed = 11});

  // Direct run: 10 steps.
  model::ParticleSet direct = pset;
  {
    auto engine = make_engine_();
    core::SimulationConfig cfg;
    cfg.dt = 0.01;
    cfg.steps = 10;
    cfg.log_every = 0;
    core::Simulation sim(*engine, cfg);
    sim.run(direct);
  }

  // First half + snapshot.
  const std::string path =
      (std::filesystem::temp_directory_path() / "g5_restart.g5snap").string();
  model::ParticleSet half = pset;
  {
    auto engine = make_engine_();
    core::SimulationConfig cfg;
    cfg.dt = 0.01;
    cfg.steps = 5;
    cfg.log_every = 0;
    core::Simulation sim(*engine, cfg);
    sim.run(half);
    core::write_snapshot(path, half, 0.05, 0.05);
  }

  // Restart.
  model::ParticleSet resumed;
  core::read_snapshot(path, resumed);
  {
    auto engine = make_engine_();
    core::SimulationConfig cfg;
    cfg.dt = 0.01;
    cfg.steps = 5;
    cfg.log_every = 0;
    core::Simulation sim(*engine, cfg);
    sim.run(resumed);
  }
  std::filesystem::remove(path);

  double worst = 0.0;
  for (std::size_t i = 0; i < direct.size(); ++i) {
    worst = std::max(worst, (direct.pos()[i] - resumed.pos()[i]).norm());
  }
  EXPECT_LT(worst, 1e-12);
}

TEST(Integration, GalaxyCollisionApproaches) {
  // The two galaxies must fall toward each other (parabolic orbit).
  ic::GalaxyCollisionConfig gc;
  gc.n_per_galaxy = 256;
  gc.initial_separation = 8.0;
  auto icr = ic::make_galaxy_collision(gc);
  auto engine = core::make_engine(
      "grape-tree", ForceParams{.eps = 0.05, .theta = 0.75, .n_crit = 64});
  core::SimulationConfig cfg;
  cfg.dt = 0.05;
  cfg.steps = 40;
  cfg.log_every = 0;
  core::Simulation sim(*engine, cfg);

  auto separation = [&](const model::ParticleSet& ps) {
    math::Vec3d c1{}, c2{};
    for (std::size_t i = 0; i < icr.n_first; ++i) c1 += ps.pos()[i];
    for (std::size_t i = icr.n_first; i < ps.size(); ++i) c2 += ps.pos()[i];
    c1 /= static_cast<double>(icr.n_first);
    c2 /= static_cast<double>(ps.size() - icr.n_first);
    return (c2 - c1).norm();
  };
  const double before = separation(icr.particles);
  sim.run(icr.particles);
  const double after = separation(icr.particles);
  EXPECT_LT(after, before);
}

TEST(Integration, AllEnginesAgreeOnDynamics) {
  // Short integration with each engine from identical ICs: final centers
  // of mass agree (chaos needs longer to diverge; 10 soft steps is safe).
  model::ParticleSet base =
      ic::make_plummer(ic::PlummerConfig{.n = 128, .seed = 13});
  std::vector<model::ParticleSet> results;
  for (const char* name : {"host-direct", "host-tree-original",
                           "host-tree-modified", "grape-tree"}) {
    model::ParticleSet pset = base;
    auto engine = core::make_engine(
        name, ForceParams{.eps = 0.1, .theta = 0.3, .n_crit = 32});
    core::SimulationConfig cfg;
    cfg.dt = 0.005;
    cfg.steps = 10;
    cfg.log_every = 0;
    core::Simulation sim(*engine, cfg);
    sim.run(pset);
    results.push_back(std::move(pset));
  }
  for (std::size_t e = 1; e < results.size(); ++e) {
    double worst = 0.0;
    for (std::size_t i = 0; i < base.size(); ++i) {
      worst = std::max(worst,
                       (results[e].pos()[i] - results[0].pos()[i]).norm());
    }
    EXPECT_LT(worst, 2e-2) << e;
  }
}

TEST(Integration, ScaledWorkloadThroughPerfModel) {
  // The E1 pipeline: measured workload -> performance model, sane output.
  ic::CosmologicalSphereConfig cc;
  cc.grid_n = 8;
  const auto icr = ic::make_cosmological_sphere(cc);
  tree::BhTree tree;
  tree.build(icr.particles);
  tree::WalkStats stats;
  for (const auto& g : tree::collect_groups(tree, tree::GroupConfig{64})) {
    tree::count_group(tree, g, tree::WalkConfig{0.75}, &stats);
  }
  core::RunWorkload work;
  work.n_particles = icr.particles.size();
  work.steps = 1;
  work.interactions = stats.interactions;
  work.list_entries = stats.list_entries;
  work.groups = stats.lists;
  work.original_interactions = stats.interactions / 4;
  const auto report = core::project_performance(
      grape::SystemConfig::paper_system(), core::HostCostModel{},
      grape::CostModel{}, work);
  EXPECT_GT(report.total_s, 0.0);
  EXPECT_GT(report.raw_flops, 0.0);
  EXPECT_GT(report.usd_per_mflops, 0.0);
}

}  // namespace
