#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "ic/plummer.hpp"
#include "ic/uniform.hpp"

namespace {

using namespace g5;
using core::CorrelationConfig;
using core::RadialProfileConfig;
using math::Vec3d;

TEST(Correlation, PoissonSphereIsUncorrelated) {
  const auto pset = ic::make_uniform_ball(8000, 2.0, 1.0, 3);
  CorrelationConfig cfg;
  cfg.r_min = 0.05;
  cfg.r_max = 1.0;
  cfg.bins = 8;
  cfg.sample_radius = 2.0;
  const auto xi = core::correlation_function(pset, cfg);
  ASSERT_EQ(xi.xi.size(), 8u);
  EXPECT_GT(xi.n_used, 7900u);
  for (std::size_t b = 0; b < xi.xi.size(); ++b) {
    // Poisson noise on thousands of pairs per bin: |xi| well below 0.15.
    if (xi.pairs[b] > 500) {
      EXPECT_LT(std::fabs(xi.xi[b]), 0.15) << "bin " << b;
    }
  }
}

TEST(Correlation, ClusteredSetIsPositiveAtSmallR) {
  const auto pset = ic::make_clustered(6000, 6, 10.0, 0.15, 1.0, 7);
  CorrelationConfig cfg;
  cfg.r_min = 0.05;
  cfg.r_max = 3.0;
  cfg.bins = 10;
  cfg.sample_radius = 6.0;
  const auto xi = core::correlation_function(pset, cfg);
  // Strong clustering at separations below the clump size.
  EXPECT_GT(xi.xi.front(), 5.0);
  // And xi decreases toward large separations.
  EXPECT_GT(xi.xi.front(), xi.xi.back());
}

TEST(Correlation, CentrallyConcentratedModelClustersAtCenterScale) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 6000, .seed = 5});
  CorrelationConfig cfg;
  cfg.r_min = 0.02;
  cfg.r_max = 2.0;
  cfg.bins = 10;
  const auto xi = core::correlation_function(pset, cfg);
  // A Plummer sphere is "clustered" relative to uniform within its sample
  // sphere: xi > 0 at small r.
  EXPECT_GT(xi.xi.front(), 0.5);
}

TEST(Correlation, Validation) {
  const auto pset = ic::make_uniform_ball(100, 1.0, 1.0, 9);
  CorrelationConfig bad;
  bad.r_min = 0.0;
  EXPECT_THROW(core::correlation_function(pset, bad), std::invalid_argument);
  bad = CorrelationConfig{};
  bad.bins = 0;
  EXPECT_THROW(core::correlation_function(pset, bad), std::invalid_argument);
}

TEST(RadialProfile, UniformBallFlatDensity) {
  const auto pset = ic::make_uniform_ball(20000, 1.0, 1.0, 11);
  RadialProfileConfig cfg;
  cfg.r_max = 1.0;
  cfg.bins = 5;
  const auto prof = core::radial_profile(pset, cfg);
  // Radii are about the CoM (slightly off-centre for a finite sample), so
  // a handful of edge particles can fall past r_max.
  EXPECT_NEAR(prof.total_mass, 1.0, 0.01);
  const double rho = 1.0 / (4.0 / 3.0 * M_PI);
  // Outer bins hold plenty of particles; inner bin is noisy.
  for (std::size_t b = 1; b < 5; ++b) {
    EXPECT_NEAR(prof.density[b], rho, 0.15 * rho) << b;
  }
  // Cold: zero velocity dispersion.
  for (std::size_t b = 0; b < 5; ++b) {
    EXPECT_DOUBLE_EQ(prof.vel_dispersion[b], 0.0);
  }
}

TEST(RadialProfile, PlummerCentrallyConcentrated) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 20000, .seed = 13});
  RadialProfileConfig cfg;
  cfg.r_max = 3.0;
  cfg.bins = 12;
  const auto prof = core::radial_profile(pset, cfg);
  EXPECT_GT(prof.density[0], 10.0 * prof.density[6]);
  // Velocity dispersion falls outward.
  EXPECT_GT(prof.vel_dispersion[0], prof.vel_dispersion[10]);
  // Equilibrium model: mean radial velocity ~ 0 everywhere.
  for (std::size_t b = 0; b < 8; ++b) {
    if (prof.count[b] > 300) {
      EXPECT_LT(std::fabs(prof.mean_radial_vel[b]),
                0.2 * prof.vel_dispersion[b] + 0.05)
          << b;
    }
  }
}

TEST(RadialProfile, LogBins) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 5000, .seed = 15});
  RadialProfileConfig cfg;
  cfg.r_max = 5.0;
  cfg.bins = 10;
  cfg.log_bins = true;
  const auto prof = core::radial_profile(pset, cfg);
  // Bin edges grow geometrically.
  const double ratio0 = prof.r_hi[0] / prof.r_lo[0];
  const double ratio5 = prof.r_hi[5] / prof.r_lo[5];
  EXPECT_NEAR(ratio0, ratio5, 1e-9);
}

TEST(LagrangianRadii, OrderedAndHalfMassMatches) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 20000, .seed = 17});
  const auto radii = core::lagrangian_radii(pset, {0.1, 0.5, 0.9});
  ASSERT_EQ(radii.size(), 3u);
  EXPECT_LT(radii[0], radii[1]);
  EXPECT_LT(radii[1], radii[2]);
  // r_half of Plummer = b / sqrt(2^{2/3} - 1).
  const double b = 3.0 * M_PI / 16.0;
  EXPECT_NEAR(radii[1], b / std::sqrt(std::cbrt(4.0) - 1.0),
              0.05 * radii[1]);
  EXPECT_THROW(core::lagrangian_radii(pset, {0.0}), std::invalid_argument);
  EXPECT_THROW(core::lagrangian_radii(pset, {1.5}), std::invalid_argument);
}

TEST(NearestNeighbour, PoissonExpectation) {
  // Uniform cube side L with n points: mean NN distance ~ 0.554 (V/n)^1/3.
  const std::size_t n = 5000;
  const auto pset = ic::make_uniform_cube(n, 0.0, 10.0, 1.0, 19);
  const double d = core::mean_nearest_neighbour(pset, 300, 21);
  const double expected =
      0.554 * std::cbrt(1000.0 / static_cast<double>(n));
  EXPECT_NEAR(d, expected, 0.15 * expected);
}

TEST(NearestNeighbour, EmptyAndDegenerate) {
  model::ParticleSet empty;
  EXPECT_DOUBLE_EQ(core::mean_nearest_neighbour(empty, 10, 1), 0.0);
  model::ParticleSet one;
  one.add(Vec3d{}, Vec3d{}, 1.0);
  EXPECT_DOUBLE_EQ(core::mean_nearest_neighbour(one, 10, 1), 0.0);
}

}  // namespace
