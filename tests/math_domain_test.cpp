// Strong numeric-domain types (math/domain.hpp): layout identity and
// bitwise transparency. The wrappers must be the same bytes as their
// carrier integers and every codec path through them must produce
// exactly the doubles the pre-wrapper code produced — the golden and
// determinism suites check the whole pipeline; these tests pin the
// wrapper layer in isolation.
#include "math/domain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "grape/pipeline.hpp"
#include "math/fixed.hpp"

namespace {

using g5::math::Fixed20;
using g5::math::FixedDelta;
using g5::math::FixedPointCodec;
using g5::math::LnsCode;

// Layout identity: the compile-time half of this test. A JWord array of
// wrapped words is byte-identical to the raw-integer layout it replaced.
static_assert(sizeof(LnsCode) == sizeof(std::int32_t));
static_assert(alignof(LnsCode) == alignof(std::int32_t));
static_assert(sizeof(Fixed20) == sizeof(std::int64_t));
static_assert(alignof(Fixed20) == alignof(std::int64_t));
static_assert(sizeof(FixedDelta) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<LnsCode>);
static_assert(std::is_trivially_copyable_v<Fixed20>);
static_assert(std::is_trivially_copyable_v<FixedDelta>);
static_assert(std::is_trivially_copyable_v<g5::grape::JWord>);
static_assert(sizeof(g5::grape::JWord::x) == 3 * sizeof(std::int64_t));

TEST(MathDomain, WrapperBitsMatchCarrier) {
  const auto word = Fixed20::from_code(INT64_C(0x123456789a));
  std::int64_t raw = 0;
  std::memcpy(&raw, &word, sizeof(raw));
  EXPECT_EQ(raw, INT64_C(0x123456789a));

  const auto code = LnsCode::from_bits(-7);
  std::int32_t raw32 = 0;
  std::memcpy(&raw32, &code, sizeof(raw32));
  EXPECT_EQ(raw32, -7);
}

TEST(MathDomain, RoundTripFactories) {
  EXPECT_EQ(LnsCode::from_bits(12345).bits(), 12345);
  EXPECT_EQ(LnsCode::from_bits(-12345).bits(), -12345);
  EXPECT_EQ(Fixed20::from_code(-99).code(), -99);
  EXPECT_EQ(FixedDelta::from_code(77).code(), 77);
  EXPECT_TRUE(FixedDelta::from_code(0).is_zero());
  EXPECT_FALSE(FixedDelta::from_code(1).is_zero());
}

TEST(MathDomain, WideIsSignExtended) {
  EXPECT_EQ(LnsCode::from_bits(-1).wide(), std::int64_t{-1});
  EXPECT_EQ(LnsCode::from_bits(INT32_MIN).wide(),
            static_cast<std::int64_t>(INT32_MIN));
}

// Encoding through the wrapper must land on exactly the integer code the
// raw formula produced (round-to-nearest, saturating rails).
TEST(MathDomain, EncodeBitwiseTransparent) {
  const FixedPointCodec codec(-2.0, 2.0, 20);
  const double center = 0.0;
  const double quantum = 4.0 / std::ldexp(1.0, 20);
  const std::int64_t max_code = (std::int64_t{1} << 19) - 1;
  const std::int64_t min_code = -(std::int64_t{1} << 19);
  for (double x : {-3.0, -1.999, -0.7531, -1e-9, 0.0, 1e-9, 0.25, 1.5,
                   1.999, 2.0, 5.0}) {
    const double rounded = std::nearbyint((x - center) / quantum);
    std::int64_t expect = static_cast<std::int64_t>(rounded);
    if (rounded >= static_cast<double>(max_code)) expect = max_code;
    if (rounded <= static_cast<double>(min_code)) expect = min_code;
    EXPECT_EQ(codec.encode(x).code(), expect) << "x=" << x;
  }
}

// Subtraction and delta decode: exact integer difference, then exactly
// one multiply by the quantum — bit-for-bit the pre-wrapper arithmetic.
TEST(MathDomain, DeltaBitwiseTransparent) {
  const FixedPointCodec codec(-1.0, 3.0, 24);
  for (double xa : {-0.9, -0.1, 0.0, 0.3, 1.7, 2.9}) {
    for (double xb : {-0.8, 0.0, 0.4, 2.2}) {
      const Fixed20 a = codec.encode(xa);
      const Fixed20 b = codec.encode(xb);
      const FixedDelta d = a - b;
      EXPECT_EQ(d.code(), a.code() - b.code());
      const double direct =
          static_cast<double>(a.code() - b.code()) * codec.quantum();
      EXPECT_EQ(codec.delta_to_double(d), direct);
    }
  }
}

TEST(MathDomain, DecodeBitwiseTransparent) {
  const FixedPointCodec codec(-1.0, 1.0, 20);
  const double center = 0.0;
  for (std::int64_t code : {INT64_C(-524288), INT64_C(-1), INT64_C(0),
                            INT64_C(1), INT64_C(524287)}) {
    const double direct =
        center + static_cast<double>(code) * codec.quantum();
    EXPECT_EQ(codec.decode(Fixed20::from_code(code)), direct);
  }
}

// The i == j cut is one OR-reduction over the three deltas, as the
// hardware coincidence detector does it.
TEST(MathDomain, CoincidentOrReduction) {
  const auto zero = FixedDelta::from_code(0);
  const auto one = FixedDelta::from_code(1);
  const auto neg = FixedDelta::from_code(-5);
  EXPECT_TRUE(g5::math::coincident(zero, zero, zero));
  EXPECT_FALSE(g5::math::coincident(one, zero, zero));
  EXPECT_FALSE(g5::math::coincident(zero, neg, zero));
  EXPECT_FALSE(g5::math::coincident(zero, zero, one));
}

TEST(MathDomain, JWordCopyIsBytewise) {
  const FixedPointCodec codec(-1.0, 1.0, 20);
  g5::grape::JWord w{};
  w.x[0] = codec.encode(0.25);
  w.x[1] = codec.encode(-0.5);
  w.x[2] = codec.encode(0.875);
  w.mass_exact = 1.0 / 3.0;
  g5::grape::JWord copy{};
  std::memcpy(&copy, &w, sizeof(copy));
  EXPECT_EQ(copy.x[0], w.x[0]);
  EXPECT_EQ(copy.x[1], w.x[1]);
  EXPECT_EQ(copy.x[2], w.x[2]);
  EXPECT_EQ(copy.mass_exact, w.mass_exact);
}

// Runtime spot checks of the constexpr log-domain ALU (the table-grid
// invariants themselves are static_asserted in src/math/lns.cpp).
TEST(MathDomain, LogDomainAluHelpers) {
  using namespace g5::math;
  EXPECT_EQ(lns_max_log(8, 12), (std::int32_t{1} << 19) - 1);
  EXPECT_EQ(lns_min_log(8, 12), -(std::int32_t{1} << 19));
  EXPECT_EQ(lns_saturate(1 << 20, lns_min_log(8, 12), lns_max_log(8, 12)),
            lns_max_log(8, 12));
  EXPECT_EQ(lns_saturate(-(1 << 20), lns_min_log(8, 12), lns_max_log(8, 12)),
            lns_min_log(8, 12));
  EXPECT_EQ(lns_saturate(123, lns_min_log(8, 12), lns_max_log(8, 12)), 123);

  EXPECT_EQ(lns_half_away(3), 2);
  EXPECT_EQ(lns_half_away(-3), -2);
  EXPECT_EQ(lns_half_away(4), 2);
  EXPECT_EQ(lns_half_away(-4), -2);

  EXPECT_EQ(lns_table_grid(1000, 10, 4), 1024);
  EXPECT_EQ(lns_table_grid(-1000, 10, 4), -1024);
  EXPECT_EQ(lns_table_grid(1000, 10, 0), 1000);   // disabled: identity
  EXPECT_EQ(lns_table_grid(1000, 10, 10), 1000);  // full width: identity

  for (std::int32_t lv : {-4097, -4096, -1, 0, 1, 255, 256, 4095}) {
    const int q = lns_exp2_split_q(lv, 8);
    const std::int64_t r = lns_exp2_split_r(lv, 8);
    EXPECT_GE(r, 0) << "lv=" << lv;
    EXPECT_LT(r, 256) << "lv=" << lv;
    EXPECT_EQ((static_cast<std::int64_t>(q) << 8) + r, lv);
  }
}

}  // namespace
