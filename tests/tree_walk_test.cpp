#include <gtest/gtest.h>

#include <cmath>

#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "ic/uniform.hpp"
#include "tree/walk.hpp"

namespace {

using namespace g5;
using math::Vec3d;
using tree::BhTree;
using tree::InteractionList;
using tree::WalkConfig;
using tree::WalkStats;

TEST(WalkOriginal, ThetaZeroExpandsToAllParticles) {
  const auto pset = ic::make_uniform_cube(200, -1.0, 1.0, 1.0, 3);
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  tree::walk_original(tree, pset.pos()[0], WalkConfig{0.0}, list);
  EXPECT_EQ(list.size(), 200u);
  double m = 0.0;
  for (double mm : list.mass) m += mm;
  EXPECT_NEAR(m, 1.0, 1e-12);
}

TEST(WalkOriginal, MassClosureAtAnyTheta) {
  // Every accepted cell carries its whole subtree's mass, so the list's
  // total mass always equals the system mass.
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 2000, .seed = 3});
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  for (double theta : {0.3, 0.75, 1.2}) {
    tree::walk_original(tree, pset.pos()[5], WalkConfig{theta}, list);
    double m = 0.0;
    for (double mm : list.mass) m += mm;
    EXPECT_NEAR(m, 1.0, 1e-12) << theta;
  }
}

TEST(WalkOriginal, ListShrinksWithTheta) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 4000, .seed = 5});
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  std::size_t prev = pset.size() + 1;
  for (double theta : {0.0, 0.4, 0.8, 1.5}) {
    tree::walk_original(tree, pset.pos()[7], WalkConfig{theta}, list);
    EXPECT_LE(list.size(), prev) << theta;
    prev = list.size();
  }
  EXPECT_LT(prev, pset.size() / 4);  // theta = 1.5 compresses a lot
}

TEST(WalkOriginal, ForceAccuracyImprovesWithSmallerTheta) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 3000, .seed = 7});
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  const double eps = 0.01;

  double prev_err = 1e9;
  for (double theta : {1.0, 0.6, 0.3}) {
    double err_sum = 0.0;
    int count = 0;
    for (std::size_t i = 0; i < pset.size(); i += 101) {
      const Vec3d target = pset.pos()[i];
      tree::walk_original(tree, target, WalkConfig{theta}, list);
      Vec3d acc;
      double pot;
      tree::evaluate_list_host(list, {&target, 1}, eps, {&acc, 1}, {&pot, 1});
      // Exact reference (skip self).
      Vec3d ref{};
      double pref = 0.0;
      grape::host_forces_on_targets({&target, 1}, pset.pos(), pset.mass(),
                                    eps, {&ref, 1}, {&pref, 1});
      // Both sides contain the self pair identically (zero force), so the
      // comparison is apples to apples.
      err_sum += (acc - ref).norm() / ref.norm();
      ++count;
    }
    const double mean_err = err_sum / count;
    EXPECT_LT(mean_err, prev_err);
    prev_err = mean_err;
    if (theta == 0.3) EXPECT_LT(mean_err, 5e-3);
  }
}

TEST(WalkOriginal, CountMatchesMaterializedList) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 1500, .seed = 9});
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  for (std::size_t i = 0; i < pset.size(); i += 77) {
    WalkStats ws_count, ws_list;
    const auto len_count =
        tree::count_original(tree, pset.pos()[i], WalkConfig{0.75}, &ws_count);
    const auto len_list =
        tree::walk_original(tree, pset.pos()[i], WalkConfig{0.75}, list,
                            &ws_list);
    EXPECT_EQ(len_count, len_list);
    EXPECT_EQ(ws_count.node_terms, ws_list.node_terms);
    EXPECT_EQ(ws_count.particle_terms, ws_list.particle_terms);
    EXPECT_EQ(ws_count.nodes_visited, ws_list.nodes_visited);
  }
}

TEST(WalkOriginal, StatsAccumulate) {
  const auto pset = ic::make_uniform_cube(500, -1.0, 1.0, 1.0, 11);
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  WalkStats stats;
  for (int i = 0; i < 10; ++i) {
    tree::walk_original(tree, pset.pos()[static_cast<std::size_t>(i)],
                        WalkConfig{0.75}, list, &stats);
  }
  EXPECT_EQ(stats.lists, 10u);
  EXPECT_EQ(stats.interactions, stats.list_entries);
  EXPECT_EQ(stats.node_terms + stats.particle_terms, stats.list_entries);
  EXPECT_GE(stats.max_list, stats.mean_list());
  EXPECT_GT(stats.nodes_visited, 10u);
}

TEST(WalkStats, MergeAddsCounters) {
  WalkStats a, b;
  a.lists = 2;
  a.interactions = 10;
  a.max_list = 7;
  b.lists = 3;
  b.interactions = 20;
  b.max_list = 9;
  a.merge(b);
  EXPECT_EQ(a.lists, 5u);
  EXPECT_EQ(a.interactions, 30u);
  EXPECT_EQ(a.max_list, 9u);
}

TEST(EvaluateListHost, SkipsExactCoincidenceUnsoftened) {
  InteractionList list;
  list.push(Vec3d{1.0, 1.0, 1.0}, 5.0);  // coincides with the target
  list.push(Vec3d{2.0, 1.0, 1.0}, 3.0);
  const Vec3d target{1.0, 1.0, 1.0};
  Vec3d acc;
  double pot;
  tree::evaluate_list_host(list, {&target, 1}, 0.0, {&acc, 1}, {&pot, 1});
  EXPECT_NEAR(acc.x, 3.0, 1e-12);
  EXPECT_NEAR(pot, -3.0, 1e-12);
}

}  // namespace
