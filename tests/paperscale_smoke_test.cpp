// Paper-scale smoke test (ctest -C paperscale -L paperscale; excluded
// from the default run — see tests/CMakeLists.txt).
//
// Builds the tree for the paper's headline N = 2,159,038 (Kawai et al.
// 1999, Section 5: a uniform sphere comparable to their Zel'dovich
// sphere carve), checks node-count / depth / peak-RSS bounds, then runs
// one full force step through the native-backend emulated GRAPE-5 with
// the paper's treecode parameters (theta = 0.75, n_crit = 2000) and
// reports the measured mean interaction-list length alongside the
// paper's 13,431 figure.
//
// Environment knobs:
//   G5_PAPERSCALE_N      override the particle count (debugging)
//   G5_THREADS           host lanes for build + walk (default: auto)
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "core/engines.hpp"
#include "ic/uniform.hpp"
#include "tree/tree.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

using namespace g5;

constexpr std::size_t kPaperN = 2159038;
constexpr double kPaperMeanList = 13431.0;

std::size_t peak_rss_bytes() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
}

TEST(PaperScale, TreeBuildAndNativeForceStep) {
  std::size_t n = kPaperN;
  if (const char* env = std::getenv("G5_PAPERSCALE_N")) {
    n = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    ASSERT_GT(n, 0u);
  }

  auto pset = ic::make_uniform_ball(n, 1.0, 1.0, 1999);

  // --- Tree build (parallel over the resolved lane count) ---
  tree::TreeBuildConfig cfg;  // leaf_max 8, parallel cutoff 32768
  util::ThreadPool pool(0);   // 0 = resolve via G5_THREADS / hw concurrency
  tree::BhTree tree;
  util::Stopwatch build_watch;
  tree.build(pset, cfg, &pool);
  const double build_s = build_watch.elapsed();

  std::printf("[paperscale] N=%zu build %.2f s, %zu nodes, depth %d, "
              "%u lanes\n",
              n, build_s, tree.node_count(), tree.max_depth_reached(),
              pool.size());

  // Node count: a Morton-ordered octree over N bodies with leaf_max 8
  // lands well inside [N/64, N] nodes for any sane distribution.
  EXPECT_GE(tree.node_count(), n / 64);
  EXPECT_LE(tree.node_count(), n);
  EXPECT_GE(tree.max_depth_reached(), 4);
  EXPECT_LE(tree.max_depth_reached(), math::kMortonBitsPerDim - 1);
  // Build-time bound: generous enough for one slow CI core (the
  // container baseline in BENCH_p9.json is < 1 s).
  EXPECT_LT(build_s, 120.0);

  // --- One force step through the native backend ---
  core::ForceParams fp;
  fp.eps = 0.02;
  fp.theta = 0.75;      // the paper's opening angle
  fp.n_crit = 2000;     // the paper's group bound
  fp.backend = grape::BackendKind::Native;
  auto engine = core::make_engine("grape-tree", fp);
  util::Stopwatch force_watch;
  engine->compute(pset);
  const double force_s = force_watch.elapsed();

  const core::EngineStats& es = engine->stats();
  const double mean_list =
      static_cast<double>(es.interactions) / static_cast<double>(n);
  std::printf("[paperscale] force step %.1f s, mean interaction list "
              "%.0f (paper: %.0f at N=%zu)\n",
              force_s, mean_list, kPaperMeanList, kPaperN);

  // The paper's Table: <n_int> = 13,431 at theta = 0.75, n_crit = 2000.
  // Our IC is a uniform sphere rather than their evolved Zel'dovich
  // sphere, so allow a wide band — the order of magnitude and the
  // n_crit floor are what pin the reproduction.
  EXPECT_GT(mean_list, static_cast<double>(fp.n_crit));
  if (n == kPaperN) {
    EXPECT_GT(mean_list, kPaperMeanList / 3.0);
    EXPECT_LT(mean_list, kPaperMeanList * 3.0);
  }

  // Peak RSS: particles + tree + sort scratch + lists stay far below
  // this on a 64-bit host (measured ~1.1 GB at the paper's N).
  const double rss_gib =
      static_cast<double>(peak_rss_bytes()) / (1024.0 * 1024.0 * 1024.0);
  std::printf("[paperscale] peak RSS %.2f GiB\n", rss_gib);
  if (n == kPaperN) EXPECT_LT(rss_gib, 3.0);
}

}  // namespace
