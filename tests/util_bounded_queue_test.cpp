// util::BoundedQueue: FIFO order, blocking backpressure, and the close
// semantics (drain, then false) the AsyncDevice pipeline builds on. The
// cross-thread cases run under the TSan CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "util/bounded_queue.hpp"
#include "util/mutex.hpp"
#include "util/thread.hpp"

namespace {

using g5::util::BoundedQueue;

TEST(BoundedQueue, CapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  BoundedQueue<int> r(7);
  EXPECT_EQ(r.capacity(), 7u);
}

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> q(8);
  for (int v = 0; v < 5; ++v) EXPECT_TRUE(q.push(v));
  EXPECT_EQ(q.size(), 5u);
  int out = -1;
  for (int v = 0; v < 5; ++v) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, CloseDrainsThenReturnsFalse) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // rejected after close
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));  // drained and closed
  q.close();                 // idempotent
}

TEST(BoundedQueue, FullPushBlocksUntilPop) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  g5::util::Thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the main thread pops
    pushed.store(true, std::memory_order_release);
  });
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(q.pop(out));  // waits for the producer as needed
  EXPECT_EQ(out, 2);
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_acquire));
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(2);
  std::atomic<bool> finished{false};
  g5::util::Thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(q.pop(out));  // blocks empty, then close() wakes it
    finished.store(true, std::memory_order_release);
  });
  q.close();
  consumer.join();
  EXPECT_TRUE(finished.load(std::memory_order_acquire));
}

TEST(BoundedQueue, SingleConsumerSeesProducerOrder) {
  // One producer, one consumer, capacity far below the item count so the
  // backpressure path is exercised continuously.
  constexpr int kItems = 10000;
  BoundedQueue<int> q(4);
  std::vector<int> seen;
  seen.reserve(kItems);
  g5::util::Thread consumer([&] {
    int out = 0;
    while (q.pop(out)) seen.push_back(out);
  });
  for (int v = 0; v < kItems; ++v) ASSERT_TRUE(q.push(v));
  q.close();
  consumer.join();
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kItems));
  for (int v = 0; v < kItems; ++v) EXPECT_EQ(seen[static_cast<size_t>(v)], v);
}

TEST(BoundedQueue, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);
  g5::util::Mutex sink_mutex;
  std::vector<int> sink;

  std::vector<g5::util::Thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      int out = 0;
      while (q.pop(out)) {
        g5::util::MutexLock lock(sink_mutex);
        sink.push_back(out);
      }
    });
  }
  {
    std::vector<g5::util::Thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, p] {
        for (int v = 0; v < kPerProducer; ++v) {
          ASSERT_TRUE(q.push(p * kPerProducer + v));
        }
      });
    }
  }  // producers joined
  q.close();
  consumers.clear();  // joined

  ASSERT_EQ(sink.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(sink.begin(), sink.end());
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(sink[static_cast<std::size_t>(v)], v);
  }
}

}  // namespace
