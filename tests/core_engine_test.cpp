#include <gtest/gtest.h>

#include <cmath>

#include "core/engines.hpp"
#include "ic/plummer.hpp"
#include "util/stats.hpp"

namespace {

using namespace g5;
using core::ForceParams;
using math::Vec3d;

const model::ParticleSet& test_set() {
  static const model::ParticleSet pset =
      ic::make_plummer(ic::PlummerConfig{.n = 1200, .seed = 41});
  return pset;
}

/// RMS relative acceleration error of `name` against host-direct.
double engine_error(const std::string& name, const ForceParams& fp,
                    double* pot_err_out = nullptr) {
  model::ParticleSet ref = test_set();
  core::HostDirectEngine exact(fp);
  exact.compute(ref);

  model::ParticleSet work = test_set();
  auto engine = core::make_engine(name, fp);
  engine->compute(work);

  util::RunningStat err, perr;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const double rn = ref.acc()[i].norm();
    if (rn > 0.0) err.add((work.acc()[i] - ref.acc()[i]).norm() / rn);
    if (ref.pot()[i] != 0.0) {
      perr.add(std::fabs(work.pot()[i] - ref.pot()[i]) /
               std::fabs(ref.pot()[i]));
    }
  }
  if (pot_err_out != nullptr) *pot_err_out = perr.rms();
  return err.rms();
}

TEST(Engines, HostTreeOriginalAccuracy) {
  ForceParams fp;
  fp.eps = 0.01;
  fp.theta = 0.4;
  double pot_err = 0.0;
  EXPECT_LT(engine_error("host-tree-original", fp, &pot_err), 3e-3);
  EXPECT_LT(pot_err, 3e-3);
}

TEST(Engines, HostTreeModifiedAccuracy) {
  ForceParams fp;
  fp.eps = 0.01;
  fp.theta = 0.4;
  fp.n_crit = 128;
  double pot_err = 0.0;
  EXPECT_LT(engine_error("host-tree-modified", fp, &pot_err), 2e-3);
  EXPECT_LT(pot_err, 2e-3);
}

TEST(Engines, GrapeDirectAccuracy) {
  // Pure hardware error: whole-force errors average below the 0.3%
  // pairwise figure.
  ForceParams fp;
  fp.eps = 0.01;
  double pot_err = 0.0;
  EXPECT_LT(engine_error("grape-direct", fp, &pot_err), 5e-3);
  EXPECT_LT(pot_err, 5e-3);
}

TEST(Engines, GrapeTreeAccuracy) {
  // The paper's system at theta = 0.75: "average error ... around 0.1%"
  // (tree-dominated). Accept up to 0.5%.
  ForceParams fp;
  fp.eps = 0.01;
  fp.theta = 0.75;
  fp.n_crit = 128;
  const double err = engine_error("grape-tree", fp);
  EXPECT_GT(err, 2e-4);  // not magically exact
  EXPECT_LT(err, 5e-3);
}

TEST(Engines, ModifiedMoreAccurateThanOriginalAtEqualTheta) {
  // Section 3 of the paper: "our modified tree algorithm is more accurate
  // than the original tree algorithm for the same accuracy parameter"
  // (citing Barnes 1990 and Kawai & Makino 1999). The group MAC measures
  // distance to the whole bounding sphere (conservative for every member)
  // and the entire neighbourhood is summed directly.
  for (double theta : {0.6, 0.9}) {
    ForceParams fp;
    fp.eps = 0.01;
    fp.theta = theta;
    fp.n_crit = 128;
    const double original = engine_error("host-tree-original", fp);
    const double modified = engine_error("host-tree-modified", fp);
    EXPECT_LT(modified, original) << "theta=" << theta;
  }
}

TEST(Engines, GrapeTreeMatchesHostTreeClosely) {
  // Section 2: "the relative accuracy was practically the same when we
  // performed the same force calculation using standard 64-bit floating
  // point arithmetic" — grape-tree error ~ host-tree error at equal theta.
  ForceParams fp;
  fp.eps = 0.01;
  fp.theta = 0.75;
  fp.n_crit = 128;
  const double host_err = engine_error("host-tree-modified", fp);
  const double grape_err = engine_error("grape-tree", fp);
  EXPECT_LT(grape_err, 3.0 * host_err);
}

TEST(Engines, PotentialConventionConsistent) {
  // All engines exclude the self term; total potential energies agree.
  ForceParams fp;
  fp.eps = 0.05;
  fp.theta = 0.3;
  fp.n_crit = 64;
  model::ParticleSet ref = test_set();
  core::HostDirectEngine exact(fp);
  exact.compute(ref);
  const double w_ref = ref.potential_energy_from_pot();
  for (const char* name :
       {"host-tree-original", "host-tree-modified", "grape-tree",
        "grape-direct"}) {
    model::ParticleSet work = test_set();
    auto engine = core::make_engine(name, fp);
    engine->compute(work);
    EXPECT_NEAR(work.potential_energy_from_pot(), w_ref,
                0.01 * std::fabs(w_ref))
        << name;
  }
}

TEST(Engines, StatsPopulated) {
  ForceParams fp;
  fp.n_crit = 64;
  model::ParticleSet work = test_set();
  auto engine = core::make_engine("grape-tree", fp);
  engine->compute(work);
  const auto& s = engine->stats();
  EXPECT_EQ(s.evaluations, 1u);
  EXPECT_GT(s.interactions, work.size());
  EXPECT_GT(s.groups, 1u);
  EXPECT_GT(s.walk.lists, 0u);
  EXPECT_GT(s.seconds_total, 0.0);
  EXPECT_GE(s.seconds_total,
            s.seconds_tree_build);
  engine->reset_stats();
  EXPECT_EQ(engine->stats().evaluations, 0u);
}

TEST(Engines, HostDirectCountsPairs) {
  ForceParams fp;
  model::ParticleSet work = test_set();
  core::HostDirectEngine engine(fp);
  engine.compute(work);
  const auto n = work.size();
  EXPECT_EQ(engine.stats().interactions, n * (n - 1));
}

TEST(Engines, NewtonsThirdLawHostDirect) {
  ForceParams fp;
  fp.eps = 0.02;
  model::ParticleSet work = test_set();
  core::HostDirectEngine engine(fp);
  engine.compute(work);
  Vec3d total{};
  for (std::size_t i = 0; i < work.size(); ++i) {
    total += work.mass()[i] * work.acc()[i];
  }
  EXPECT_NEAR(total.norm(), 0.0, 1e-10);
}

TEST(Engines, FactoryRejectsUnknown) {
  EXPECT_THROW(core::make_engine("fpga-tree", ForceParams{}),
               std::invalid_argument);
}

// The error must name the offending engine and list the valid ones, so a
// CLI typo ("--engine grape_tree") is self-explanatory.
TEST(Engines, FactoryErrorNamesOffenderAndAlternatives) {
  try {
    core::make_engine("grape_tree", ForceParams{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("grape_tree"), std::string::npos) << msg;
    for (const char* known : {"host-direct", "host-tree", "host-tree-modified",
                              "grape-direct", "grape-tree"}) {
      EXPECT_NE(msg.find(known), std::string::npos)
          << "message should list '" << known << "': " << msg;
    }
  }
}

// Empty names take the same rejection path.
TEST(Engines, FactoryRejectsEmptyName) {
  EXPECT_THROW(core::make_engine("", ForceParams{}), std::invalid_argument);
}

TEST(Engines, SharedDeviceAcrossEngines) {
  auto device = std::make_shared<grape::Grape5Device>();
  ForceParams fp;
  fp.n_crit = 64;
  auto tree_engine = core::make_engine("grape-tree", fp, device);
  auto direct_engine = core::make_engine("grape-direct", fp, device);
  model::ParticleSet work = test_set();
  tree_engine->compute(work);
  const auto after_tree = device->system().account().interactions;
  direct_engine->compute(work);
  EXPECT_GT(device->system().account().interactions, after_tree);
}

TEST(Engines, EmptySetIsNoOp) {
  model::ParticleSet empty;
  for (const char* name : {"host-direct", "host-tree-original",
                           "host-tree-modified", "grape-tree",
                           "grape-direct"}) {
    auto engine = core::make_engine(name, ForceParams{});
    EXPECT_NO_THROW(engine->compute(empty)) << name;
  }
}

}  // namespace
