#include <gtest/gtest.h>

#include "model/particles.hpp"

namespace {

using g5::math::Vec3d;
using g5::model::Aabb;
using g5::model::ParticleSet;

ParticleSet two_body() {
  ParticleSet p;
  p.add(Vec3d{1.0, 0.0, 0.0}, Vec3d{0.0, 1.0, 0.0}, 2.0);
  p.add(Vec3d{-1.0, 0.0, 0.0}, Vec3d{0.0, -1.0, 0.0}, 2.0);
  return p;
}

TEST(ParticleSet, AddAndSize) {
  ParticleSet p;
  EXPECT_TRUE(p.empty());
  p.add(Vec3d{1, 2, 3}, Vec3d{4, 5, 6}, 7.0);
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.pos()[0], (Vec3d{1, 2, 3}));
  EXPECT_EQ(p.vel()[0], (Vec3d{4, 5, 6}));
  EXPECT_DOUBLE_EQ(p.mass()[0], 7.0);
  EXPECT_EQ(p.id()[0], 0u);
  p.add(Vec3d{}, Vec3d{}, 1.0);
  EXPECT_EQ(p.id()[1], 1u);
}

TEST(ParticleSet, ResizeAssignsSequentialIds) {
  ParticleSet p(5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(p.id()[i], i);
  p.resize(8);
  EXPECT_EQ(p.id()[7], 7u);
}

TEST(ParticleSet, AppendOffsetsIds) {
  ParticleSet a = two_body();
  ParticleSet b = two_body();
  a.append(b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a.id()[2], 2u);
  EXPECT_EQ(a.id()[3], 3u);
  EXPECT_DOUBLE_EQ(a.total_mass(), 8.0);
}

TEST(ParticleSet, BulkDiagnostics) {
  const ParticleSet p = two_body();
  EXPECT_DOUBLE_EQ(p.total_mass(), 4.0);
  EXPECT_EQ(p.center_of_mass(), (Vec3d{0, 0, 0}));
  EXPECT_EQ(p.total_momentum(), (Vec3d{0, 0, 0}));
  // L = sum m r x v = 2*(x1 x v1) + 2*(x2 x v2) = 2*(z + z) = 4 z.
  EXPECT_EQ(p.total_angular_momentum(), (Vec3d{0, 0, 4.0}));
  EXPECT_DOUBLE_EQ(p.kinetic_energy(), 2.0);  // 2 * 0.5*2*1
}

TEST(ParticleSet, PotentialEnergyFromPot) {
  ParticleSet p = two_body();
  // Exact pair potential: phi_i = -m_j / r = -1 each; W = 0.5*sum m phi.
  p.pot()[0] = -1.0;
  p.pot()[1] = -1.0;
  EXPECT_DOUBLE_EQ(p.potential_energy_from_pot(), -2.0);
}

TEST(ParticleSet, BoundingBox) {
  ParticleSet p;
  p.add(Vec3d{-1, 5, 2}, Vec3d{}, 1.0);
  p.add(Vec3d{3, -2, 7}, Vec3d{}, 1.0);
  const Aabb box = p.bounding_box();
  EXPECT_EQ(box.lo, (Vec3d{-1, -2, 2}));
  EXPECT_EQ(box.hi, (Vec3d{3, 5, 7}));
  EXPECT_DOUBLE_EQ(box.cube_size(), 7.0);
  EXPECT_EQ(box.center(), (Vec3d{1.0, 1.5, 4.5}));
  EXPECT_TRUE(box.contains(Vec3d{0, 0, 5}));
  EXPECT_FALSE(box.contains(Vec3d{0, 0, 8}));
}

TEST(ParticleSet, EmptyDiagnosticsSafe) {
  const ParticleSet p;
  EXPECT_DOUBLE_EQ(p.total_mass(), 0.0);
  EXPECT_EQ(p.center_of_mass(), (Vec3d{}));
  const Aabb box = p.bounding_box();
  EXPECT_EQ(box.lo, (Vec3d{}));
}

TEST(ParticleSet, ApplyPermutation) {
  ParticleSet p;
  p.add(Vec3d{0, 0, 0}, Vec3d{0, 0, 0}, 1.0);
  p.add(Vec3d{1, 1, 1}, Vec3d{1, 0, 0}, 2.0);
  p.add(Vec3d{2, 2, 2}, Vec3d{2, 0, 0}, 3.0);
  p.apply_permutation({2, 0, 1});
  EXPECT_EQ(p.pos()[0], (Vec3d{2, 2, 2}));
  EXPECT_DOUBLE_EQ(p.mass()[0], 3.0);
  EXPECT_EQ(p.id()[0], 2u);
  EXPECT_EQ(p.pos()[1], (Vec3d{0, 0, 0}));
  EXPECT_EQ(p.pos()[2], (Vec3d{1, 1, 1}));
  EXPECT_THROW(p.apply_permutation({0, 1}), std::invalid_argument);
}

TEST(ParticleSet, ZeroForce) {
  ParticleSet p = two_body();
  p.acc()[0] = Vec3d{9, 9, 9};
  p.pot()[1] = 5.0;
  p.zero_force();
  EXPECT_EQ(p.acc()[0], (Vec3d{}));
  EXPECT_DOUBLE_EQ(p.pot()[1], 0.0);
}

}  // namespace
