#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "math/lns.hpp"
#include "math/rng.hpp"

namespace {

using g5::math::LnsFormat;
using g5::math::LnsValue;

TEST(Lns, ZeroAndSpecials) {
  const LnsFormat fmt(8);
  EXPECT_DOUBLE_EQ(fmt.to_double(fmt.from_double(0.0)), 0.0);
  EXPECT_DOUBLE_EQ(fmt.to_double(LnsValue::make_zero()), 0.0);
  // Non-finite inputs collapse to zero (the hardware cannot represent them
  // and the datapath never produces them).
  EXPECT_DOUBLE_EQ(fmt.to_double(fmt.from_double(
                       std::numeric_limits<double>::infinity())), 0.0);
  EXPECT_DOUBLE_EQ(fmt.to_double(fmt.from_double(
                       std::numeric_limits<double>::quiet_NaN())), 0.0);
}

TEST(Lns, SignsPreserved) {
  const LnsFormat fmt(10);
  EXPECT_GT(fmt.quantize(3.7), 0.0);
  EXPECT_LT(fmt.quantize(-3.7), 0.0);
  EXPECT_DOUBLE_EQ(fmt.quantize(-3.7), -fmt.quantize(3.7));
}

TEST(Lns, PowersOfTwoExact) {
  const LnsFormat fmt(8);
  for (int e = -20; e <= 20; ++e) {
    const double x = std::ldexp(1.0, e);
    EXPECT_DOUBLE_EQ(fmt.quantize(x), x) << "2^" << e;
  }
}

class LnsWidth : public ::testing::TestWithParam<int> {};

TEST_P(LnsWidth, RoundTripRelativeErrorBound) {
  const int frac = GetParam();
  const LnsFormat fmt(frac);
  // Half-step in log space -> relative bound (2^(2^-F/2) - 1).
  const double bound = std::exp2(0.5 * std::ldexp(1.0, -frac)) - 1.0;
  g5::math::Rng rng(frac);
  double worst = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-12.0, 12.0));
    const double q = fmt.quantize(x);
    worst = std::max(worst, std::fabs(q - x) / x);
  }
  EXPECT_LE(worst, bound * (1.0 + 1e-9));
  // And the bound is nearly attained (quantization is not finer than F).
  EXPECT_GE(worst, 0.5 * bound);
}

TEST_P(LnsWidth, RelativeStepFormula) {
  const int frac = GetParam();
  const LnsFormat fmt(frac);
  EXPECT_NEAR(fmt.relative_step(), std::exp2(std::ldexp(1.0, -frac)) - 1.0,
              1e-15);
}

INSTANTIATE_TEST_SUITE_P(Widths, LnsWidth,
                         ::testing::Values(4, 6, 8, 10, 12, 16));

TEST(Lns, MulIsExactInFormat) {
  const LnsFormat fmt(8);
  g5::math::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double a = std::pow(10.0, rng.uniform(-6.0, 6.0)) *
                     (rng.uniform() < 0.5 ? -1.0 : 1.0);
    const double b = std::pow(10.0, rng.uniform(-6.0, 6.0));
    const LnsValue va = fmt.from_double(a);
    const LnsValue vb = fmt.from_double(b);
    // The product of the *quantized* values, which mul computes exactly.
    const double expected = fmt.to_double(va) * fmt.to_double(vb);
    const double got = fmt.to_double(fmt.mul(va, vb));
    EXPECT_NEAR(got, expected, std::fabs(expected) * 1e-12);
  }
}

TEST(Lns, MulWithZero) {
  const LnsFormat fmt(8);
  const LnsValue z = fmt.from_double(0.0);
  const LnsValue v = fmt.from_double(5.0);
  EXPECT_DOUBLE_EQ(fmt.to_double(fmt.mul(z, v)), 0.0);
  EXPECT_DOUBLE_EQ(fmt.to_double(fmt.mul(v, z)), 0.0);
}

TEST(Lns, SquareMatchesSelfMul) {
  const LnsFormat fmt(9);
  g5::math::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-5.0, 5.0)) *
                     (rng.uniform() < 0.5 ? -1.0 : 1.0);
    const LnsValue v = fmt.from_double(x);
    EXPECT_DOUBLE_EQ(fmt.to_double(fmt.square(v)),
                     fmt.to_double(fmt.mul(v, v)));
    EXPECT_GE(fmt.to_double(fmt.square(v)), 0.0);
  }
}

TEST(Lns, PowNeg32Accuracy) {
  const LnsFormat fmt(10);
  g5::math::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-6.0, 6.0));
    const LnsValue v = fmt.from_double(x);
    const double xq = fmt.to_double(v);
    const double expected = std::pow(xq, -1.5);
    const double got = fmt.to_double(fmt.pow_neg_3_2(v));
    // One extra rounding of the log word (half ulp in log space).
    const double tol = expected * (std::exp2(std::ldexp(1.0, -10)) - 1.0);
    EXPECT_NEAR(got, expected, tol + expected * 1e-12);
  }
}

TEST(Lns, PowNeg12Accuracy) {
  const LnsFormat fmt(10);
  g5::math::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-6.0, 6.0));
    const LnsValue v = fmt.from_double(x);
    const double xq = fmt.to_double(v);
    const double expected = 1.0 / std::sqrt(xq);
    const double got = fmt.to_double(fmt.pow_neg_1_2(v));
    const double tol = expected * (std::exp2(std::ldexp(1.0, -10)) - 1.0);
    EXPECT_NEAR(got, expected, tol + expected * 1e-12);
  }
}

TEST(Lns, PowOfZeroSaturatesHigh) {
  const LnsFormat fmt(8);
  const LnsValue z = LnsValue::make_zero();
  EXPECT_GT(fmt.to_double(fmt.pow_neg_3_2(z)), 1e100);
  EXPECT_GT(fmt.to_double(fmt.pow_neg_1_2(z)), 1e100);
}

TEST(Lns, ExponentSaturation) {
  const LnsFormat fmt(8, 6);  // tiny exponent range: |log2| < 32
  const double huge = std::ldexp(1.0, 100);
  const double q = fmt.quantize(huge);
  EXPECT_LT(q, huge);           // clamped
  EXPECT_GT(q, std::ldexp(1.0, 30));
  // Far below the representable range the word underflows to the tagged
  // zero (hardware flush-to-zero), not the smallest representable value.
  const double tiny = std::ldexp(1.0, -100);
  EXPECT_TRUE(fmt.from_double(tiny).zero);
  EXPECT_DOUBLE_EQ(fmt.quantize(tiny), 0.0);
}

TEST(Lns, RangeEdgeSemantics) {
  const LnsFormat fmt(8, 6);  // bottom code at log2 = -32
  // Exactly the bottom code is representable and kept (rounding, not
  // clamping, happens at the edge)...
  const LnsValue bottom = fmt.from_double(std::ldexp(1.0, -32));
  EXPECT_FALSE(bottom.zero);
  EXPECT_DOUBLE_EQ(fmt.to_double(bottom), std::ldexp(1.0, -32));
  // ...while anything rounding below it flushes to zero, for both signs.
  const double below = 0.99 * std::ldexp(1.0, -32);
  EXPECT_TRUE(fmt.from_double(below).zero);
  EXPECT_TRUE(fmt.from_double(-below).zero);
  // The top edge saturates (clamps to the largest code); it never flushes.
  const LnsValue top = fmt.from_double(std::ldexp(1.0, 100));
  EXPECT_FALSE(top.zero);
  EXPECT_NEAR(std::log2(fmt.to_double(top)), 32.0, 0.01);
  const LnsValue top_neg = fmt.from_double(-std::ldexp(1.0, 100));
  EXPECT_FALSE(top_neg.zero);
  EXPECT_EQ(top_neg.sign, -1);
  EXPECT_EQ(top_neg.logval, top.logval);
}

TEST(Lns, CoarseTableDegradesPow) {
  LnsFormat full(10);
  LnsFormat coarse(10);
  coarse.set_table_index_bits(4);
  g5::math::Rng rng(13);
  double err_full = 0.0, err_coarse = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-3.0, 3.0));
    const double expected = std::pow(x, -1.5);
    err_full += std::fabs(full.to_double(full.pow_neg_3_2(
                    full.from_double(x))) - expected) / expected;
    err_coarse += std::fabs(coarse.to_double(coarse.pow_neg_3_2(
                      coarse.from_double(x))) - expected) / expected;
  }
  EXPECT_GT(err_coarse, 2.0 * err_full);
}

TEST(Lns, CoarseTableAppliesToBothPowerUnits) {
  // One physical lookup table feeds both power units, so the coarse-table
  // grid rounding must hit r^(-1/2) exactly as it hits r^(-3/2): inputs
  // that collapse onto the same table index produce identical outputs
  // from each unit.
  LnsFormat coarse(10);
  coarse.set_table_index_bits(4);  // grid step 2^6 = 64 logval counts
  LnsValue a, b;
  a.zero = b.zero = false;
  a.sign = b.sign = 1;
  a.logval = g5::math::LnsCode::from_bits(1000);  // both round to 1024
  b.logval = g5::math::LnsCode::from_bits(1020);
  EXPECT_EQ(coarse.pow_neg_3_2(a).logval, coarse.pow_neg_3_2(b).logval);
  EXPECT_EQ(coarse.pow_neg_1_2(a).logval, coarse.pow_neg_1_2(b).logval);

  // And the potential unit degrades with the table exactly like the force
  // unit does (the regression the probe's codec-error split relies on).
  LnsFormat full(10);
  g5::math::Rng rng(17);
  double err_full = 0.0, err_coarse = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double x = std::pow(10.0, rng.uniform(-3.0, 3.0));
    const double expected = 1.0 / std::sqrt(x);
    err_full += std::fabs(full.to_double(full.pow_neg_1_2(
                    full.from_double(x))) - expected) / expected;
    err_coarse += std::fabs(coarse.to_double(coarse.pow_neg_1_2(
                      coarse.from_double(x))) - expected) / expected;
  }
  EXPECT_GT(err_coarse, 2.0 * err_full);
}

TEST(Lns, DecodeTableBitwiseMatchesExp2) {
  // to_double's split evaluation (exp2 fraction table + ldexp by the
  // integer part) must be bitwise-identical to the direct std::exp2 over
  // the entire logval domain of the default format — the batched pipeline
  // kernel relies on this for bit-exactness against the scalar datapath.
  const LnsFormat fmt(8);  // exp_bits 12 -> logval in [-2^19, 2^19)
  const std::int64_t lo = -(std::int64_t{1} << 19);
  const std::int64_t hi = std::int64_t{1} << 19;
  for (std::int64_t lv = lo; lv < hi; ++lv) {
    LnsValue v;
    v.zero = false;
    v.sign = (lv & 1) != 0 ? -1 : 1;
    v.logval = g5::math::LnsCode::from_bits(static_cast<std::int32_t>(lv));
    const double direct =
        static_cast<double>(v.sign) *
        std::exp2(std::ldexp(static_cast<double>(v.logval.bits()), -8));
    const double got = fmt.to_double(v);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(got),
              std::bit_cast<std::uint64_t>(direct))
        << "logval " << lv;
  }
}

TEST(Lns, TableBitsValidation) {
  LnsFormat fmt(8);
  EXPECT_NO_THROW(fmt.set_table_index_bits(0));
  EXPECT_NO_THROW(fmt.set_table_index_bits(8));
  EXPECT_THROW(fmt.set_table_index_bits(-1), std::invalid_argument);
  EXPECT_THROW(fmt.set_table_index_bits(9), std::invalid_argument);
}

TEST(Lns, ConstructorValidation) {
  EXPECT_THROW(LnsFormat(0), std::invalid_argument);
  EXPECT_THROW(LnsFormat(25), std::invalid_argument);
  EXPECT_THROW(LnsFormat(8, 2), std::invalid_argument);
  EXPECT_THROW(LnsFormat(8, 20), std::invalid_argument);
}

}  // namespace
