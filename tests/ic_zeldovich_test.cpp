#include <gtest/gtest.h>

#include <cmath>

#include "ic/zeldovich.hpp"
#include "model/units.hpp"

namespace {

using g5::ic::CosmologicalSphereConfig;
using g5::ic::make_cosmological_sphere;
using g5::math::Vec3d;

CosmologicalSphereConfig small_cfg() {
  CosmologicalSphereConfig cfg;
  cfg.grid_n = 16;
  cfg.seed = 2;
  return cfg;
}

TEST(Zeldovich, ParticleCountMatchesSphereMass) {
  const auto r = make_cosmological_sphere(small_cfg());
  // N ~ rho * V_sphere / m_particle.
  const g5::model::Cosmology cosmo(g5::model::CosmologyParams::scdm());
  const double volume = 4.0 / 3.0 * M_PI * std::pow(r.sphere_radius, 3);
  const double expected = cosmo.mean_matter_density() * volume / 1.7;
  EXPECT_NEAR(static_cast<double>(r.particles.size()), expected,
              0.05 * expected);
}

TEST(Zeldovich, PaperScalingRelation) {
  // The paper's lattice spacing from m = 1.7e10 Msun: ~0.626 Mpc, so the
  // box for grid_n cells is grid_n * 0.626 Mpc.
  const auto r = make_cosmological_sphere(small_cfg());
  const double spacing = r.box_size / 16.0;
  EXPECT_NEAR(spacing, 0.626, 0.01);
  // The paper: R = 50 Mpc sphere -> 2,159,038 particles. Our N scales as
  // (R/50)^3 * 2.159e6.
  const double predicted = 2159038.0 * std::pow(r.sphere_radius / 50.0, 3);
  EXPECT_NEAR(static_cast<double>(r.particles.size()), predicted,
              0.06 * predicted);
}

TEST(Zeldovich, StartsAtRedshift24) {
  const auto r = make_cosmological_sphere(small_cfg());
  EXPECT_NEAR(r.a_start, 0.04, 1e-12);
  EXPECT_NEAR(r.growth_start, 0.04, 1e-3);  // EdS: D = a
  EXPECT_GT(r.time_end, r.time_start);
  EXPECT_NEAR(r.time_end - r.time_start, 12.93, 0.05);
}

TEST(Zeldovich, SphereIsCentredAndBounded) {
  const auto r = make_cosmological_sphere(small_cfg());
  const auto& p = r.particles;
  // Physical radius at a_start = a * comoving radius (+ displacements).
  const double r_phys = r.a_start * r.sphere_radius;
  Vec3d com{};
  for (const auto& x : p.pos()) {
    EXPECT_LT(x.norm(), r_phys * 1.3);
    com += x;
  }
  com /= static_cast<double>(p.size());
  EXPECT_LT(com.norm(), 0.05 * r_phys);
}

TEST(Zeldovich, VelocitiesDominatedByHubbleFlow) {
  // v = H r + peculiar; at z = 24 the radial Hubble term dominates for
  // most particles: check the mass-weighted radial velocity ~ H(a) r.
  const auto r = make_cosmological_sphere(small_cfg());
  const g5::model::Cosmology cosmo(g5::model::CosmologyParams::scdm());
  const double hubble = cosmo.hubble(r.a_start);
  const auto& p = r.particles;
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double rr = p.pos()[i].norm();
    if (rr < 1e-6) continue;
    num += p.vel()[i].dot(p.pos()[i]) / rr;
    den += hubble * rr;
  }
  EXPECT_NEAR(num / den, 1.0, 0.05);
}

TEST(Zeldovich, DisplacementsAreSmallFractionOfBox) {
  const auto r = make_cosmological_sphere(small_cfg());
  EXPECT_GT(r.rms_displacement, 0.0);
  // Zel'dovich validity: displacements < lattice spacing at z = 24-ish.
  EXPECT_LT(r.rms_displacement, r.box_size / 16.0);
}

TEST(Zeldovich, DeterministicInSeed) {
  const auto a = make_cosmological_sphere(small_cfg());
  const auto b = make_cosmological_sphere(small_cfg());
  ASSERT_EQ(a.particles.size(), b.particles.size());
  EXPECT_EQ(a.particles.pos()[10], b.particles.pos()[10]);
  auto cfg = small_cfg();
  cfg.seed = 3;
  const auto c = make_cosmological_sphere(cfg);
  EXPECT_NE(a.particles.pos()[10], c.particles.pos()[10]);
}

TEST(Zeldovich, ExplicitRadiusHonored) {
  auto cfg = small_cfg();
  cfg.sphere_radius = 3.0;
  const auto r = make_cosmological_sphere(cfg);
  EXPECT_DOUBLE_EQ(r.sphere_radius, 3.0);
  cfg.sphere_radius = 100.0;  // exceeds the box
  EXPECT_THROW(make_cosmological_sphere(cfg), std::invalid_argument);
}

TEST(Zeldovich, Validation) {
  auto cfg = small_cfg();
  cfg.particle_mass = 0.0;
  EXPECT_THROW(make_cosmological_sphere(cfg), std::invalid_argument);
  cfg = small_cfg();
  cfg.z_start = 0.0;
  EXPECT_THROW(make_cosmological_sphere(cfg), std::invalid_argument);
}

TEST(Zeldovich, TimestepScheduleIsMonotone) {
  const g5::model::Cosmology cosmo(g5::model::CosmologyParams::scdm());
  const auto dts = cosmo.log_a_timesteps(0.04, 1.0, 32);
  ASSERT_EQ(dts.size(), 32u);
  double total = 0.0;
  for (std::size_t i = 0; i < dts.size(); ++i) {
    EXPECT_GT(dts[i], 0.0);
    if (i > 0) EXPECT_GT(dts[i], dts[i - 1]);  // early steps smaller
    total += dts[i];
  }
  EXPECT_NEAR(total, cosmo.age(1.0) - cosmo.age(0.04), 1e-9);
  EXPECT_THROW(cosmo.log_a_timesteps(1.0, 0.04, 8), std::invalid_argument);
  EXPECT_THROW(cosmo.log_a_timesteps(0.04, 1.0, 0), std::invalid_argument);
}

}  // namespace
