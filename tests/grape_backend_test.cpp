// Backend-equivalence suite for the batched multi-backend force kernel.
//
//  * BitExact batched vs scalar: Pipeline::interact_batch must be
//    bitwise-identical to repeated interact() calls for every batch
//    shape (width 1, odd widths, the SIMD width, ragged tails) — the
//    batching is a pure restructuring of the same datapath.
//  * Native vs host reference: the Native backend computes the same
//    interactions in plain double on quantized coordinates, so it must
//    track the host kernel to the position-quantization floor.
//  * Probe invariance: identical accelerations in, identical g5.err.*
//    out — the batched board path cannot move the probe's numbers.
//  * Zero-distance semantics: the i == j cut and the divergent
//    r^2 == 0 corner behave identically across the lns, exact and
//    native paths (the interact_exact bugfix).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/engines.hpp"
#include "grape/driver.hpp"
#include "grape/host_reference.hpp"
#include "grape/pipeline.hpp"
#include "ic/plummer.hpp"
#include "math/rng.hpp"
#include "obs/probe.hpp"

namespace {

using namespace g5;
using grape::BackendKind;
using grape::IState;
using grape::JWord;
using grape::Pipeline;
using grape::PipelineNumerics;
using grape::PipelineScaling;
using grape::Vec3d;

PipelineScaling test_scaling(double eps = 0.01) {
  PipelineScaling s;
  s.range_lo = -10.0;
  s.range_hi = 10.0;
  s.eps = eps;
  s.force_quantum = 1e-9;
  s.potential_quantum = 1e-10;
  return s;
}

/// A j-set exercising the interesting lanes: generic geometry, a
/// coincident particle (the i == j cut), near and far neighbours.
std::vector<JWord> make_jset(const Pipeline& pipe, const Vec3d& xi,
                             std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  std::vector<JWord> js;
  js.reserve(n);
  js.push_back(pipe.encode_j(xi, 0.7));  // coincident: must be cut
  js.push_back(pipe.encode_j(xi + Vec3d{1e-4, 0.0, 0.0}, 1.2));
  while (js.size() < n) {
    js.push_back(pipe.encode_j(4.0 * rng.in_unit_ball(),
                               rng.uniform(0.1, 1.5)));
  }
  return js;
}

bool bitwise_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool same_state(const Pipeline& pipe, const IState& a, const IState& b) {
  const Vec3d fa = pipe.read_force(a);
  const Vec3d fb = pipe.read_force(b);
  return bitwise_equal(fa.x, fb.x) && bitwise_equal(fa.y, fb.y) &&
         bitwise_equal(fa.z, fb.z) &&
         bitwise_equal(pipe.read_potential(a), pipe.read_potential(b)) &&
         pipe.saturated(a) == pipe.saturated(b);
}

TEST(Backend, BatchedBitwiseIdenticalAcrossWidths) {
  Pipeline pipe{PipelineNumerics{}};
  pipe.configure(test_scaling());
  const Vec3d xi{0.3, -0.2, 0.1};
  const std::size_t w = Pipeline::batch_width();
  const auto js = make_jset(pipe, xi, 4 * w + 5, 101);

  // Scalar reference: one interact() per j, in stream order.
  IState ref = pipe.encode_i(xi);
  for (const JWord& j : js) pipe.interact(ref, j);

  // Whole-stream batch (the board path: blocks of batch_width + a ragged
  // tail inside interact_batch).
  {
    IState st = pipe.encode_i(xi);
    pipe.interact_batch(st, js.data(), js.size());
    EXPECT_TRUE(same_state(pipe, ref, st)) << "whole stream";
  }

  // Segmented batches: width 1, an odd width, exactly the SIMD width, and
  // a ragged split — chunk boundaries must not change a single bit.
  for (const std::size_t width : {std::size_t{1}, std::size_t{3}, w, w + 5}) {
    IState st = pipe.encode_i(xi);
    for (std::size_t base = 0; base < js.size(); base += width) {
      const std::size_t n = std::min(width, js.size() - base);
      pipe.interact_batch(st, js.data() + base, n);
    }
    EXPECT_TRUE(same_state(pipe, ref, st)) << "segment width " << width;
  }
}

TEST(Backend, BatchedBitwiseIdenticalUnsoftened) {
  // eps = 0 exercises the r^2 path without the softening floor.
  Pipeline pipe{PipelineNumerics{}};
  pipe.configure(test_scaling(0.0));
  const Vec3d xi{-1.0, 2.0, 0.5};
  const auto js = make_jset(pipe, xi, 37, 202);
  IState ref = pipe.encode_i(xi);
  for (const JWord& j : js) pipe.interact(ref, j);
  IState st = pipe.encode_i(xi);
  pipe.interact_batch(st, js.data(), js.size());
  EXPECT_TRUE(same_state(pipe, ref, st));
}

TEST(Backend, NativeMatchesHostReference) {
  PipelineNumerics num;
  num.backend = BackendKind::Native;
  Pipeline pipe{num};
  pipe.configure(test_scaling());

  math::Rng rng(7);
  const std::size_t nj = 512;
  std::vector<Vec3d> jpos(nj);
  std::vector<double> jmass(nj);
  for (std::size_t j = 0; j < nj; ++j) {
    jpos[j] = 4.0 * rng.in_unit_ball();
    jmass[j] = rng.uniform(0.1, 1.5);
  }
  const Vec3d xi{0.25, -0.4, 0.8};
  IState st = pipe.encode_i(xi);
  std::vector<JWord> js(nj);
  for (std::size_t j = 0; j < nj; ++j) {
    js[j] = pipe.encode_j(jpos[j], jmass[j]);
  }
  pipe.interact_batch(st, js.data(), js.size());

  Vec3d ref_acc[1];
  double ref_pot[1];
  grape::host_forces_on_targets({&xi, 1}, jpos, jmass, 0.01, ref_acc,
                                ref_pot);
  // Only the 32-bit coordinate quantization separates the two: ~5e-9
  // relative positions; 1e-6 leaves margin for close pairs.
  EXPECT_LT((pipe.read_force(st) - ref_acc[0]).norm() / ref_acc[0].norm(),
            1e-6);
  EXPECT_NEAR(pipe.read_potential(st), ref_pot[0],
              1e-6 * std::fabs(ref_pot[0]));
  EXPECT_FALSE(pipe.saturated(st));

  // Scalar native calls accumulate the same sums.
  IState sc = pipe.encode_i(xi);
  for (const JWord& j : js) pipe.interact(sc, j);
  EXPECT_LT((pipe.read_force(sc) - pipe.read_force(st)).norm(),
            1e-12 * pipe.read_force(st).norm());
}

TEST(Backend, ZeroDistanceSemanticsIdenticalAcrossPaths) {
  // Coincident pair: cut entirely, on every backend.
  for (int variant = 0; variant < 3; ++variant) {
    PipelineNumerics num;
    if (variant == 1) num.exact_arithmetic = true;
    if (variant == 2) num.backend = BackendKind::Native;
    Pipeline pipe{num};
    pipe.configure(test_scaling(0.0));
    const Vec3d x{1.0, 2.0, 3.0};
    IState st = pipe.encode_i(x);
    pipe.interact(st, pipe.encode_j(x, 2.0));
    EXPECT_EQ(pipe.read_force(st), (Vec3d{})) << "variant " << variant;
    EXPECT_DOUBLE_EQ(pipe.read_potential(st), 0.0) << "variant " << variant;
    EXPECT_FALSE(pipe.saturated(st)) << "variant " << variant;
  }

  // Divergent corner: distinct fixed-point coordinates whose double
  // separation-squared underflows to zero with eps == 0. Every path must
  // saturate (infinite potential well, force toward the source) rather
  // than silently drop the pair.
  for (int variant = 0; variant < 3; ++variant) {
    PipelineNumerics num;
    if (variant == 1) num.exact_arithmetic = true;
    if (variant == 2) num.backend = BackendKind::Native;
    Pipeline pipe{num};
    PipelineScaling s;
    s.range_lo = -5e-155;
    s.range_hi = 5e-155;
    s.eps = 0.0;
    s.force_quantum = 1e-18;
    s.potential_quantum = 1e-18;
    pipe.configure(s);
    const double q = pipe.position_quantum();
    ASSERT_LT(q, 1e-160);
    IState st = pipe.encode_i(Vec3d{0.0, 0.0, 0.0});
    // 3 codes along +x: nonzero fixed-point difference, (3q)^2 == 0.0.
    pipe.interact(st, pipe.encode_j(Vec3d{3.0 * q, 0.0, 0.0}, 1.0));
    EXPECT_TRUE(pipe.saturated(st)) << "variant " << variant;
    EXPECT_GT(pipe.read_force(st).x, 0.0) << "variant " << variant;
    EXPECT_LT(pipe.read_potential(st), 0.0) << "variant " << variant;
  }
}

TEST(Backend, EngineBackendPlumbing) {
  core::ForceParams fp;
  fp.backend = BackendKind::Native;
  const auto tree_engine = core::make_engine("grape-tree", fp);
  const auto* gt = dynamic_cast<core::GrapeTreeEngine*>(tree_engine.get());
  ASSERT_NE(gt, nullptr);
  EXPECT_EQ(gt->device().system().config().numerics.backend,
            BackendKind::Native);
  fp.backend = BackendKind::BitExact;
  const auto direct_engine = core::make_engine("grape-direct", fp);
  const auto* gd =
      dynamic_cast<core::GrapeDirectEngine*>(direct_engine.get());
  ASSERT_NE(gd, nullptr);
  EXPECT_EQ(gd->device().system().config().numerics.backend,
            BackendKind::BitExact);

  BackendKind parsed = BackendKind::BitExact;
  EXPECT_TRUE(grape::parse_backend("native", parsed));
  EXPECT_EQ(parsed, BackendKind::Native);
  EXPECT_TRUE(grape::parse_backend("bit-exact", parsed));
  EXPECT_EQ(parsed, BackendKind::BitExact);
  EXPECT_FALSE(grape::parse_backend("fast", parsed));
  EXPECT_EQ(grape::backend_name(BackendKind::Native), "native");
  EXPECT_EQ(grape::backend_name(BackendKind::BitExact), "bit-exact");
}

TEST(Backend, ProbeInvariantScalarVsBatchedBoardPath) {
  // End-to-end pin for the probe numbers: run a snapshot through the
  // (batched) device path, replay the identical evaluation with scalar
  // interact() calls, and require (a) bitwise-identical accelerations
  // and (b) bitwise-identical ForceErrorProbe results — g5.err.* cannot
  // move under the batching.
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 256, .seed = 4242});
  auto replay = pset;

  grape::SystemConfig cfg = grape::SystemConfig::paper_system();
  cfg.boards = 1;  // single board: the replay below is the full reduction
  auto device = std::make_shared<grape::Grape5Device>(cfg);
  core::ForceParams fp;
  fp.eps = 0.01;
  auto engine = core::make_engine("grape-direct", fp, device);
  engine->compute(pset);

  // Scalar replay of the same evaluation: same window, same j order,
  // per-j interact() against the whole set.
  Pipeline pipe{cfg.numerics};
  pipe.configure(device->system().scaling());
  std::vector<JWord> js(replay.size());
  for (std::size_t j = 0; j < replay.size(); ++j) {
    js[j] = pipe.encode_j(replay.pos()[j], replay.mass()[j]);
  }
  for (std::size_t i = 0; i < replay.size(); ++i) {
    IState st = pipe.encode_i(replay.pos()[i]);
    for (const JWord& j : js) pipe.interact(st, j);
    replay.acc()[i] = pipe.read_force(st);
    replay.pot()[i] = pipe.read_potential(st);
  }
  for (std::size_t i = 0; i < pset.size(); ++i) {
    ASSERT_TRUE(bitwise_equal(pset.acc()[i].x, replay.acc()[i].x) &&
                bitwise_equal(pset.acc()[i].y, replay.acc()[i].y) &&
                bitwise_equal(pset.acc()[i].z, replay.acc()[i].z) &&
                bitwise_equal(pset.pot()[i], replay.pot()[i]))
        << "particle " << i;
  }

  obs::ProbeConfig pc;
  pc.samples = 32;
  pc.eps = fp.eps;
  obs::ForceErrorProbe probe_device(pc);
  obs::ForceErrorProbe probe_replay(pc);
  const obs::ProbeResult a = probe_device.measure(pset);
  const obs::ProbeResult b = probe_replay.measure(replay);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_TRUE(bitwise_equal(a.total_p50, b.total_p50));
  EXPECT_TRUE(bitwise_equal(a.total_p99, b.total_p99));
  EXPECT_TRUE(bitwise_equal(a.tree_p50, b.tree_p50));
  EXPECT_TRUE(bitwise_equal(a.tree_p99, b.tree_p99));
  EXPECT_TRUE(bitwise_equal(a.codec_p50, b.codec_p50));
  EXPECT_TRUE(bitwise_equal(a.codec_p99, b.codec_p99));
  EXPECT_TRUE(bitwise_equal(a.total_max, b.total_max));
  EXPECT_TRUE(bitwise_equal(a.tree_max, b.tree_max));
  EXPECT_TRUE(bitwise_equal(a.codec_max, b.codec_max));
}

TEST(Backend, NativeProbeReportsVanishingCodecError) {
  // The probe replicates the engine's backend: with Native the codec leg
  // runs the same double arithmetic as its host reference, so the codec
  // error collapses to the coordinate-quantization floor.
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 512, .seed = 99});
  core::ForceParams fp;
  fp.eps = 0.01;
  fp.backend = BackendKind::Native;
  auto engine = core::make_engine("grape-tree", fp);
  engine->compute(pset);

  obs::ProbeConfig pc;
  pc.samples = 32;
  pc.eps = fp.eps;
  pc.theta = fp.theta;
  pc.backend = fp.backend;
  obs::ForceErrorProbe probe(pc);
  const obs::ProbeResult r = probe.measure(pset);
  ASSERT_GT(r.samples, 0u);
  EXPECT_LT(r.codec_p50, 1e-6);   // ~0: only coordinate quantization left
  EXPECT_GT(r.tree_p50, 1e-5);    // tree truncation error is untouched
  EXPECT_LT(r.tree_p50, 0.01);
}

}  // namespace
