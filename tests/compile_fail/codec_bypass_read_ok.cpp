// Compiling twin of codec_bypass_read.cpp: decode through the codec
// that owns the coordinate window.
#include "grape/pipeline.hpp"
#include "math/fixed.hpp"

int main() {
  const g5::math::FixedPointCodec codec(-1.0, 1.0, 20);
  g5::grape::JWord w{};
  w.x[0] = codec.encode(0.25);
  const double x = codec.decode(w.x[0]);
  return x > 0.0 ? 0 : 1;
}
