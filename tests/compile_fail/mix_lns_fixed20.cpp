// compile-fail: an LNS log word and a fixed-point position word are
// different numeric domains; the hardware has no datapath between them,
// so the types expose none. Subtracting one from the other must not
// compile. (Twin: mix_lns_fixed20_ok.cpp — same-domain subtraction.)
#include "math/domain.hpp"

int main() {
  const auto code = g5::math::LnsCode::from_bits(1000);
  const auto word = g5::math::Fixed20::from_code(42);
  const auto mixed = word - code;  // must fail: no cross-domain arithmetic
  return mixed.is_zero() ? 0 : 1;
}
