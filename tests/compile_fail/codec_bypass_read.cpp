// compile-fail: reading a fixed-point wire word back as a double
// without the codec (the classic silent codec bypass) must not
// compile — Fixed20 has no conversion to double, explicit or
// otherwise. (Twin: codec_bypass_read_ok.cpp — FixedPointCodec::decode.)
#include "grape/pipeline.hpp"

int main() {
  g5::grape::JWord w{};
  const double x = static_cast<double>(w.x[0]);  // must fail: codec bypass
  return x == 0.0 ? 0 : 1;
}
