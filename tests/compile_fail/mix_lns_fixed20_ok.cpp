// Compiling twin of mix_lns_fixed20.cpp: subtraction inside the
// fixed-point domain is the one arithmetic the hardware address unit
// performs, and the types allow exactly that.
#include "math/domain.hpp"

int main() {
  const auto a = g5::math::Fixed20::from_code(1000);
  const auto b = g5::math::Fixed20::from_code(42);
  const g5::math::FixedDelta d = a - b;
  return d.is_zero() ? 1 : 0;
}
