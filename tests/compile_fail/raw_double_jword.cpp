// compile-fail: a host double cannot be stored into a j-particle wire
// word without quantizing through the codec; assigning one directly
// must not compile. (Twin: raw_double_jword_ok.cpp — codec-mediated.)
#include "grape/pipeline.hpp"

int main() {
  g5::grape::JWord w{};
  w.x[0] = 0.25;  // must fail: raw double into a fixed-point wire word
  return 0;
}
