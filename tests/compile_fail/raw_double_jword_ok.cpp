// Compiling twin of raw_double_jword.cpp: the codec is the only door
// from host doubles into the fixed-point coordinate window.
#include "grape/pipeline.hpp"
#include "math/fixed.hpp"

int main() {
  const g5::math::FixedPointCodec codec(-1.0, 1.0, 20);
  g5::grape::JWord w{};
  w.x[0] = codec.encode(0.25);
  return w.x[0] == codec.encode(0.25) ? 0 : 1;
}
