#include <gtest/gtest.h>

#include <cmath>

#include "ic/galaxy.hpp"
#include "ic/uniform.hpp"

namespace {

using namespace g5;
using math::Vec3d;

TEST(UniformCube, BoundsAndMass) {
  const auto p = ic::make_uniform_cube(500, -2.0, 3.0, 10.0, 1);
  EXPECT_EQ(p.size(), 500u);
  EXPECT_NEAR(p.total_mass(), 10.0, 1e-9);
  for (const auto& x : p.pos()) {
    EXPECT_GE(x.min_component(), -2.0);
    EXPECT_LT(x.max_component(), 3.0);
  }
}

TEST(UniformBall, InsideRadius) {
  const auto p = ic::make_uniform_ball(500, 4.0, 1.0, 2);
  for (const auto& x : p.pos()) EXPECT_LT(x.norm(), 4.0);
}

TEST(UniformCube, Validation) {
  EXPECT_THROW(ic::make_uniform_cube(0, 0.0, 1.0, 1.0, 1),
               std::invalid_argument);
  EXPECT_THROW(ic::make_uniform_cube(10, 1.0, 1.0, 1.0, 1),
               std::invalid_argument);
  EXPECT_THROW(ic::make_uniform_ball(10, 0.0, 1.0, 1), std::invalid_argument);
}

TEST(Clustered, StaysInBoxAndClusters) {
  const double box = 10.0;
  const auto p = ic::make_clustered(4000, 5, box, 0.3, 1.0, 3);
  EXPECT_EQ(p.size(), 4000u);
  for (const auto& x : p.pos()) {
    EXPECT_GE(x.min_component(), 0.0);
    EXPECT_LE(x.max_component(), box);
  }
  // Clustered: the mean nearest-point distance is far below the uniform
  // expectation n^{-1/3}.
  double sum_min = 0.0;
  const int probes = 100;
  for (int i = 0; i < probes; ++i) {
    double best = 1e300;
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (j == static_cast<std::size_t>(i) * 40) continue;
      best = std::min(best,
                      (p.pos()[static_cast<std::size_t>(i) * 40] - p.pos()[j])
                          .norm());
    }
    sum_min += best;
  }
  const double mean_nn = sum_min / probes;
  const double uniform_nn = box / std::cbrt(4000.0);
  EXPECT_LT(mean_nn, uniform_nn);
}

TEST(GalaxyCollision, SetupGeometry) {
  ic::GalaxyCollisionConfig cfg;
  cfg.n_per_galaxy = 500;
  cfg.pericenter = 1.0;
  cfg.initial_separation = 10.0;
  const auto r = ic::make_galaxy_collision(cfg);
  EXPECT_EQ(r.particles.size(), 1000u);
  EXPECT_EQ(r.n_first, 500u);
  // Total momentum and CoM at the origin.
  EXPECT_NEAR(r.particles.total_momentum().norm(), 0.0, 1e-10);
  EXPECT_NEAR(r.particles.center_of_mass().norm(), 0.0, 1e-10);

  // Centers separated by the configured distance.
  Vec3d c1{}, c2{};
  for (std::size_t i = 0; i < 500; ++i) c1 += r.particles.pos()[i];
  for (std::size_t i = 500; i < 1000; ++i) c2 += r.particles.pos()[i];
  c1 /= 500.0;
  c2 /= 500.0;
  EXPECT_NEAR((c2 - c1).norm(), 10.0, 0.2);
}

TEST(GalaxyCollision, ParabolicOrbitEnergy) {
  // The two-body system of the galaxy centers has zero orbital energy on
  // a parabolic orbit: v_rel^2 / 2 = G(M1+M2)/d.
  ic::GalaxyCollisionConfig cfg;
  cfg.n_per_galaxy = 2000;
  cfg.mass_ratio = 2.0;
  const auto r = ic::make_galaxy_collision(cfg);
  const std::size_t n1 = r.n_first;
  Vec3d c1{}, c2{}, v1{}, v2{};
  for (std::size_t i = 0; i < n1; ++i) {
    c1 += r.particles.pos()[i];
    v1 += r.particles.vel()[i];
  }
  for (std::size_t i = n1; i < r.particles.size(); ++i) {
    c2 += r.particles.pos()[i];
    v2 += r.particles.vel()[i];
  }
  const double n2 = static_cast<double>(r.particles.size() - n1);
  c1 /= static_cast<double>(n1);
  v1 /= static_cast<double>(n1);
  c2 /= n2;
  v2 /= n2;
  const double d = (c2 - c1).norm();
  const double v2rel = (v2 - v1).norm2();
  const double mtot = r.particles.total_mass();
  EXPECT_NEAR(0.5 * v2rel, mtot / d, 0.05 * mtot / d);
}

TEST(GalaxyCollision, MassRatioHonored) {
  ic::GalaxyCollisionConfig cfg;
  cfg.n_per_galaxy = 300;
  cfg.mass_ratio = 3.0;
  const auto r = ic::make_galaxy_collision(cfg);
  double m1 = 0.0, m2 = 0.0;
  for (std::size_t i = 0; i < r.n_first; ++i) m1 += r.particles.mass()[i];
  for (std::size_t i = r.n_first; i < r.particles.size(); ++i) {
    m2 += r.particles.mass()[i];
  }
  EXPECT_NEAR(m2 / m1, 3.0, 1e-9);
}

TEST(GalaxyCollision, Validation) {
  ic::GalaxyCollisionConfig cfg;
  cfg.mass_ratio = 0.0;
  EXPECT_THROW(ic::make_galaxy_collision(cfg), std::invalid_argument);
  cfg = ic::GalaxyCollisionConfig{};
  cfg.initial_separation = 1.0;
  cfg.pericenter = 1.0;  // separation < 2 * pericenter
  EXPECT_THROW(ic::make_galaxy_collision(cfg), std::invalid_argument);
}

}  // namespace
