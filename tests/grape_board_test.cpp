#include <gtest/gtest.h>

#include "grape/board.hpp"
#include "grape/host_reference.hpp"
#include "ic/uniform.hpp"

namespace {

using namespace g5;
using grape::BoardConfig;
using grape::HostInterfaceConfig;
using grape::PipelineNumerics;
using grape::PipelineScaling;
using grape::ProcessorBoard;
using grape::Vec3d;

PipelineScaling scaling_for(double lo, double hi, double eps) {
  PipelineScaling s;
  s.range_lo = lo;
  s.range_hi = hi;
  s.eps = eps;
  s.force_quantum = 1e-10;
  s.potential_quantum = 1e-10;
  return s;
}

BoardConfig small_board() {
  BoardConfig cfg;
  cfg.jmem_capacity = 256;
  return cfg;
}

TEST(ProcessorBoard, PaperBoardShape) {
  const BoardConfig cfg;
  EXPECT_EQ(cfg.pipelines(), 16u);
  EXPECT_EQ(cfg.i_slots(), 96u);
  EXPECT_EQ(cfg.jmem_capacity, 131072u);
}

TEST(ProcessorBoard, SegmentedUploads) {
  ProcessorBoard board(small_board(), HostInterfaceConfig{},
                       PipelineNumerics{});
  board.configure(scaling_for(-2.0, 2.0, 0.01));
  const auto src = ic::make_uniform_cube(100, -1.0, 1.0, 1.0, 3);
  // Upload in two segments at different addresses.
  board.set_j(0, src.pos().data(), src.mass().data(), 60);
  board.set_j(60, src.pos().data() + 60, src.mass().data() + 60, 40);
  EXPECT_EQ(board.j_count(), 100u);

  std::vector<Vec3d> acc(8), ref_acc(8);
  std::vector<double> pot(8), ref_pot(8);
  board.run(src.pos().data(), 8, acc.data(), pot.data());
  grape::host_forces_on_targets(std::span<const Vec3d>(src.pos().data(), 8),
                                src.pos(), src.mass(), 0.01, ref_acc,
                                ref_pot);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_LT((acc[i] - ref_acc[i]).norm() / ref_acc[i].norm(), 0.02) << i;
  }
}

TEST(ProcessorBoard, CapacityEnforced) {
  ProcessorBoard board(small_board(), HostInterfaceConfig{},
                       PipelineNumerics{});
  board.configure(scaling_for(-2.0, 2.0, 0.0));
  const auto src = ic::make_uniform_cube(300, -1.0, 1.0, 1.0, 3);
  EXPECT_THROW(board.set_j(0, src.pos().data(), src.mass().data(), 257),
               std::out_of_range);
  EXPECT_THROW(board.set_j(200, src.pos().data(), src.mass().data(), 57),
               std::out_of_range);
  EXPECT_NO_THROW(board.set_j(0, src.pos().data(), src.mass().data(), 256));
  EXPECT_THROW(board.set_j_count(257), std::out_of_range);
}

TEST(ProcessorBoard, RunAccumulatesAcrossCalls) {
  // Partial j-sets: running twice with halves equals one run with all.
  ProcessorBoard board(small_board(), HostInterfaceConfig{},
                       PipelineNumerics{});
  board.configure(scaling_for(-2.0, 2.0, 0.02));
  const auto src = ic::make_uniform_cube(128, -1.0, 1.0, 1.0, 5);
  const Vec3d target = src.pos()[0];

  Vec3d acc_full{};
  double pot_full = 0.0;
  board.set_j(0, src.pos().data(), src.mass().data(), 128);
  board.run(&target, 1, &acc_full, &pot_full);

  Vec3d acc_halves{};
  double pot_halves = 0.0;
  board.set_j_count(0);
  board.set_j(0, src.pos().data(), src.mass().data(), 64);
  board.run(&target, 1, &acc_halves, &pot_halves);
  board.set_j_count(0);
  board.set_j(0, src.pos().data() + 64, src.mass().data() + 64, 64);
  board.run(&target, 1, &acc_halves, &pot_halves);

  EXPECT_LT((acc_full - acc_halves).norm(), 1e-8 + 1e-9 * acc_full.norm());
  EXPECT_NEAR(pot_full, pot_halves, 1e-8);
}

TEST(ProcessorBoard, ConfigureDropsResidentJ) {
  ProcessorBoard board(small_board(), HostInterfaceConfig{},
                       PipelineNumerics{});
  board.configure(scaling_for(-2.0, 2.0, 0.0));
  const auto src = ic::make_uniform_cube(10, -1.0, 1.0, 1.0, 3);
  board.set_j(0, src.pos().data(), src.mass().data(), 10);
  EXPECT_EQ(board.j_count(), 10u);
  board.configure(scaling_for(-4.0, 4.0, 0.0));
  EXPECT_EQ(board.j_count(), 0u);
}

TEST(ProcessorBoard, HibMetersTraffic) {
  ProcessorBoard board(small_board(), HostInterfaceConfig{},
                       PipelineNumerics{});
  board.configure(scaling_for(-2.0, 2.0, 0.0));
  const auto src = ic::make_uniform_cube(50, -1.0, 1.0, 1.0, 3);
  board.set_j(0, src.pos().data(), src.mass().data(), 50);
  std::vector<Vec3d> acc(4);
  std::vector<double> pot(4);
  board.run(src.pos().data(), 4, acc.data(), pot.data());
  const auto& hib = board.hib();
  EXPECT_EQ(hib.j_words(), 50u);
  EXPECT_EQ(hib.i_words(), 4u);
  EXPECT_EQ(hib.result_words(), 4u);
  const HostInterfaceConfig hc;
  EXPECT_EQ(hib.bytes_to_board(), 50 * hc.bytes_per_j + 4 * hc.bytes_per_i);
  EXPECT_EQ(hib.bytes_from_board(), 4 * hc.bytes_per_result);
  EXPECT_GT(hib.modeled_time(), 0.0);
}

TEST(ProcessorBoard, EmptyRunsAreNoOps) {
  ProcessorBoard board(small_board(), HostInterfaceConfig{},
                       PipelineNumerics{});
  board.configure(scaling_for(-2.0, 2.0, 0.0));
  Vec3d acc{};
  double pot = 0.0;
  const Vec3d target{0.5, 0.5, 0.5};
  EXPECT_EQ(board.run(&target, 1, &acc, &pot), 0u);  // no j resident
  EXPECT_EQ(board.run(&target, 0, &acc, &pot), 0u);  // no i requested
}

}  // namespace
