// Parallel group walks must be bitwise-identical to the serial path: every
// particle/group writes only its own outputs, so lane assignment cannot
// change a single bit of acc/pot, and the per-lane WalkStats reduce to the
// same totals. Exercised on a smooth Plummer sphere and an adversarially
// clustered snapshot, for both host tree modes and the GRAPE tree engine.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/engines.hpp"
#include "ic/plummer.hpp"
#include "tree/walk.hpp"

namespace {

using namespace g5;
using core::ForceParams;

/// Tight knots of near-coincident bodies embedded in a sparse halo — deep
/// tree, wildly uneven group costs (the scheduler's worst case).
model::ParticleSet clustered_set(std::size_t n) {
  model::ParticleSet pset;
  pset.reserve(n);
  const double m = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    if (i % 3 == 0) {
      // Knot near the far corner; spacing below float resolution.
      pset.add({1.0 - 1e-12 * t, 1.0 - 2e-12 * t, 1.0 + 1e-12 * t}, {}, m);
    } else {
      pset.add({std::cos(0.1 * t), std::sin(0.2 * t), std::cos(0.3 * t)}, {},
               m);
    }
  }
  return pset;
}

void expect_bitwise_equal(const model::ParticleSet& a,
                          const model::ParticleSet& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.acc()[i], b.acc()[i]) << what << " particle " << i;
    ASSERT_EQ(a.pot()[i], b.pot()[i]) << what << " particle " << i;
  }
}

/// Run `name` over `base` with the given thread count; also return stats.
model::ParticleSet run_engine(const char* name, const model::ParticleSet& base,
                              std::uint32_t threads,
                              core::EngineStats* stats = nullptr) {
  ForceParams fp{.eps = 0.02, .theta = 0.7, .n_crit = 32, .leaf_max = 4};
  fp.threads = threads;
  auto engine = core::make_engine(name, fp);
  model::ParticleSet pset = base;
  engine->compute(pset);
  if (stats) *stats = engine->stats();
  return pset;
}

class ParallelBitwise : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelBitwise, PlummerForcesMatchSerial) {
  const auto base = ic::make_plummer(ic::PlummerConfig{.n = 1500, .seed = 9});
  core::EngineStats s1, s2, s8;
  const auto serial = run_engine(GetParam(), base, 1, &s1);
  const auto two = run_engine(GetParam(), base, 2, &s2);
  const auto eight = run_engine(GetParam(), base, 8, &s8);
  expect_bitwise_equal(serial, two, "2 threads");
  expect_bitwise_equal(serial, eight, "8 threads");
  // The reduced walk statistics are thread-count invariant too.
  for (const auto* s : {&s2, &s8}) {
    EXPECT_EQ(s->walk.lists, s1.walk.lists);
    EXPECT_EQ(s->walk.interactions, s1.walk.interactions);
    EXPECT_EQ(s->walk.list_entries, s1.walk.list_entries);
    EXPECT_EQ(s->walk.nodes_visited, s1.walk.nodes_visited);
    EXPECT_EQ(s->walk.max_list, s1.walk.max_list);
    EXPECT_EQ(s->interactions, s1.interactions);
    EXPECT_EQ(s->groups, s1.groups);
  }
}

TEST_P(ParallelBitwise, ClusteredForcesMatchSerial) {
  const auto base = clustered_set(900);
  const auto serial = run_engine(GetParam(), base, 1);
  expect_bitwise_equal(serial, run_engine(GetParam(), base, 2), "2 threads");
  expect_bitwise_equal(serial, run_engine(GetParam(), base, 8), "8 threads");
}

INSTANTIATE_TEST_SUITE_P(Engines, ParallelBitwise,
                         ::testing::Values("host-tree-original",
                                           "host-tree-modified",
                                           "grape-tree"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ParallelBitwise, TargetSubsetMatchesSerial) {
  const auto base = ic::make_plummer(ic::PlummerConfig{.n = 600, .seed = 21});
  std::vector<std::uint32_t> targets;
  for (std::uint32_t t = 0; t < base.size(); t += 3) targets.push_back(t);
  for (const char* name : {"host-tree-modified", "grape-tree"}) {
    auto run = [&](std::uint32_t threads) {
      ForceParams fp{.eps = 0.02, .theta = 0.7, .n_crit = 32};
      fp.threads = threads;
      auto engine = core::make_engine(name, fp);
      model::ParticleSet pset = base;
      engine->compute_targets(pset, targets);
      return pset;
    };
    const auto serial = run(1);
    expect_bitwise_equal(serial, run(4), name);
  }
}

TEST(WalkStatsMerge, SumsCountersAndMaxesMaxList) {
  tree::WalkStats a;
  a.lists = 3;
  a.interactions = 100;
  a.list_entries = 40;
  a.node_terms = 25;
  a.particle_terms = 15;
  a.nodes_visited = 90;
  a.max_list = 17;
  tree::WalkStats b;
  b.lists = 2;
  b.interactions = 50;
  b.list_entries = 30;
  b.node_terms = 10;
  b.particle_terms = 20;
  b.nodes_visited = 60;
  b.max_list = 29;

  tree::WalkStats m = a;
  m.merge(b);
  EXPECT_EQ(m.lists, 5u);
  EXPECT_EQ(m.interactions, 150u);
  EXPECT_EQ(m.list_entries, 70u);
  EXPECT_EQ(m.node_terms, 35u);
  EXPECT_EQ(m.particle_terms, 35u);
  EXPECT_EQ(m.nodes_visited, 150u);
  EXPECT_EQ(m.max_list, 29u);  // max, not sum

  // The larger side's max_list survives in either merge order.
  tree::WalkStats r = b;
  r.merge(a);
  EXPECT_EQ(r.max_list, 29u);
  // Merging an empty stats object is the identity.
  tree::WalkStats id = m;
  id.merge(tree::WalkStats{});
  EXPECT_EQ(id.max_list, m.max_list);
  EXPECT_EQ(id.interactions, m.interactions);
  EXPECT_EQ(id.lists, m.lists);
}

}  // namespace
