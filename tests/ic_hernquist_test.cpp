#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "grape/host_reference.hpp"
#include "ic/hernquist.hpp"

namespace {

using g5::ic::HernquistConfig;
using g5::ic::make_hernquist;

TEST(Hernquist, BasicInvariants) {
  HernquistConfig cfg;
  cfg.n = 3000;
  const auto p = make_hernquist(cfg);
  EXPECT_EQ(p.size(), 3000u);
  EXPECT_NEAR(p.total_mass(), 1.0, 1e-12);
  EXPECT_NEAR(p.center_of_mass().norm(), 0.0, 1e-12);
  EXPECT_NEAR(p.total_momentum().norm(), 0.0, 1e-12);
}

TEST(Hernquist, EnclosedMassProfileMatchesAnalytic) {
  HernquistConfig cfg;
  cfg.n = 30000;
  cfg.seed = 5;
  const auto p = make_hernquist(cfg);
  std::vector<double> radii(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) radii[i] = p.pos()[i].norm();
  std::sort(radii.begin(), radii.end());
  // Quantile check at several mass fractions (truncation at 50 b holds
  // (50/51)^2 = 96.1% of the total mass, so compare against the truncated
  // profile: f_trunc(r) = f(r) / f(rmax)).
  const double f_rmax = g5::ic::hernquist_mass_fraction(50.0, 1.0);
  for (double frac : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double r_measured =
        radii[static_cast<std::size_t>(frac * static_cast<double>(p.size()))];
    // Invert f(r)/f(rmax) = frac: sqrt(frac * f_rmax) = r/(1+r).
    const double s = std::sqrt(frac * f_rmax);
    const double r_expected = s / (1.0 - s);
    EXPECT_NEAR(r_measured, r_expected, 0.08 * r_expected) << frac;
  }
}

TEST(Hernquist, HalfMassRadius) {
  // r_half of the untruncated model: (r/(r+1))^2 = 1/2 -> r = 1/(sqrt2-1).
  HernquistConfig cfg;
  cfg.n = 30000;
  cfg.seed = 7;
  cfg.rmax_over_b = 1000.0;  // effectively untruncated
  const auto p = make_hernquist(cfg);
  std::vector<double> radii(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) radii[i] = p.pos()[i].norm();
  std::nth_element(radii.begin(), radii.begin() + radii.size() / 2,
                   radii.end());
  EXPECT_NEAR(radii[radii.size() / 2], 1.0 / (std::sqrt(2.0) - 1.0),
              0.08 * 2.414);
}

TEST(Hernquist, NearVirialEquilibrium) {
  HernquistConfig cfg;
  cfg.n = 20000;
  cfg.seed = 9;
  const auto p = make_hernquist(cfg);
  // Measure W directly (pairwise) on a subsample-free exact sum.
  std::vector<g5::math::Vec3d> acc(p.size());
  std::vector<double> pot(p.size());
  g5::grape::host_direct_self(p.pos(), p.mass(), 0.0, acc, pot);
  double w = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) w += 0.5 * p.mass()[i] * pot[i];
  const double k = p.kinetic_energy();
  EXPECT_NEAR(2.0 * k / std::fabs(w), 1.0, 0.1);
  // And W is near the analytic untruncated value (truncation ~ few %).
  EXPECT_NEAR(w, g5::ic::hernquist_potential_energy(1.0, 1.0),
              0.12 * std::fabs(w));
}

TEST(Hernquist, CuspierThanPlummer) {
  // The r^-1 cusp concentrates far more mass at small radii: the 5 %
  // Lagrangian radius is much smaller relative to r_half.
  HernquistConfig cfg;
  cfg.n = 20000;
  cfg.seed = 11;
  const auto p = make_hernquist(cfg);
  std::vector<double> radii(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) radii[i] = p.pos()[i].norm();
  std::sort(radii.begin(), radii.end());
  const double r05 = radii[p.size() / 20];
  const double r50 = radii[p.size() / 2];
  EXPECT_LT(r05 / r50, 0.15);  // analytic ~0.124; Plummer's ratio is ~0.3
}

TEST(Hernquist, SpeedsBelowEscape) {
  HernquistConfig cfg;
  cfg.n = 5000;
  cfg.seed = 13;
  const auto p = make_hernquist(cfg);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double r = p.pos()[i].norm();
    const double v_esc = std::sqrt(2.0 / (1.0 + r));
    EXPECT_LT(p.vel()[i].norm(), v_esc * 1.1) << i;
  }
}

TEST(Hernquist, Validation) {
  HernquistConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(make_hernquist(cfg), std::invalid_argument);
  cfg = HernquistConfig{};
  cfg.scale_length = -1.0;
  EXPECT_THROW(make_hernquist(cfg), std::invalid_argument);
  EXPECT_DOUBLE_EQ(g5::ic::hernquist_mass_fraction(-1.0, 1.0), 0.0);
}

}  // namespace
