// Quadrupole moments: the host-side accuracy extension (the GRAPE
// pipelines consume point masses only).
#include <gtest/gtest.h>

#include <cmath>

#include "core/engines.hpp"
#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "tree/groupwalk.hpp"
#include "util/stats.hpp"

namespace {

using namespace g5;
using math::Vec3d;
using tree::Quadrupole;

TEST(Quadrupole, TensorOfDumbbell) {
  // Two unit masses at +-d on the x-axis about their COM:
  // Q_xx = 2 m (3d^2 - d^2) = 4 m d^2, Q_yy = Q_zz = -2 m d^2, traceless.
  std::vector<Vec3d> pos{{1.0, 0.0, 0.0}, {-1.0, 0.0, 0.0}};
  std::vector<double> mass{1.0, 1.0};
  tree::BhTree tree;
  tree::TreeBuildConfig cfg;
  cfg.quadrupole = true;
  tree.build(pos, mass, cfg);
  const Quadrupole& q = tree.quadrupole(0);  // root
  EXPECT_NEAR(q.xx, 4.0, 1e-12);
  EXPECT_NEAR(q.yy, -2.0, 1e-12);
  EXPECT_NEAR(q.zz, -2.0, 1e-12);
  EXPECT_NEAR(q.xy, 0.0, 1e-12);
  EXPECT_NEAR(q.xx + q.yy + q.zz, 0.0, 1e-12);  // traceless
}

TEST(Quadrupole, DumbbellFieldBeatsMonopole) {
  // Evaluate the dumbbell's field at distance R along a diagonal: the
  // quadrupole term must capture most of the monopole residual.
  std::vector<Vec3d> pos{{0.6, 0.0, 0.0}, {-0.6, 0.0, 0.0}};
  std::vector<double> mass{1.0, 1.0};
  tree::BhTree tree;
  tree::TreeBuildConfig cfg;
  cfg.quadrupole = true;
  tree.build(pos, mass, cfg);

  const Vec3d target{3.0, 2.0, 1.0};
  // Exact field.
  Vec3d exact{};
  double pot_exact = 0.0;
  grape::host_forces_on_targets({&target, 1}, pos, mass, 0.0, {&exact, 1},
                                {&pot_exact, 1});

  // Monopole-only list vs quadrupole list (the root cell as one term).
  tree::InteractionList mono, quad;
  mono.push(tree.root().com, tree.root().mass);
  quad.push(tree.root().com, tree.root().mass, tree.quadrupole(0));

  Vec3d a_mono, a_quad;
  double p_mono, p_quad;
  tree::evaluate_list_host(mono, {&target, 1}, 0.0, {&a_mono, 1},
                           {&p_mono, 1});
  tree::evaluate_list_host(quad, {&target, 1}, 0.0, {&a_quad, 1},
                           {&p_quad, 1});

  const double mono_err = (a_mono - exact).norm() / exact.norm();
  const double quad_err = (a_quad - exact).norm() / exact.norm();
  EXPECT_LT(quad_err, 0.35 * mono_err);
  EXPECT_LT(std::fabs(p_quad - pot_exact), 0.5 * std::fabs(p_mono - pot_exact));
}

TEST(Quadrupole, SphericalCellHasSmallTensor) {
  // An isotropic particle cloud has Q ~ 0 relative to m * r^2.
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 5000, .seed = 3});
  tree::BhTree tree;
  tree::TreeBuildConfig cfg;
  cfg.quadrupole = true;
  tree.build(pset, cfg);
  const Quadrupole& q = tree.quadrupole(0);
  double mr2 = 0.0;
  for (std::size_t k = 0; k < pset.size(); ++k) {
    mr2 += tree.sorted_mass()[k] *
           (tree.sorted_pos()[k] - tree.root().com).norm2();
  }
  const double q_norm = std::sqrt(q.xx * q.xx + q.yy * q.yy + q.zz * q.zz +
                                  2 * (q.xy * q.xy + q.xz * q.xz +
                                       q.yz * q.yz));
  EXPECT_LT(q_norm, 0.2 * mr2);
}

TEST(Quadrupole, TreeForceErrorDropsAtEqualTheta) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 3000, .seed = 7});
  const double eps = 0.01;
  model::ParticleSet exact = pset;
  grape::host_direct_self(exact.pos(), exact.mass(), eps, exact.acc(),
                          exact.pot());

  auto rms_error = [&](bool quadrupole) {
    core::ForceParams fp;
    fp.eps = eps;
    fp.theta = 0.9;
    fp.n_crit = 128;
    fp.quadrupole = quadrupole;
    core::HostTreeEngine engine(fp, core::HostTreeEngine::Mode::Modified);
    model::ParticleSet work = pset;
    engine.compute(work);
    util::RunningStat err;
    for (std::size_t i = 0; i < work.size(); ++i) {
      const double rn = exact.acc()[i].norm();
      if (rn > 0.0) err.add((work.acc()[i] - exact.acc()[i]).norm() / rn);
    }
    return err.rms();
  };

  const double mono = rms_error(false);
  const double quad = rms_error(true);
  EXPECT_LT(quad, 0.5 * mono);
}

TEST(Quadrupole, ListShapeConsistent) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 800, .seed = 9});
  tree::BhTree tree;
  tree::TreeBuildConfig cfg;
  cfg.quadrupole = true;
  tree.build(pset, cfg);
  tree::InteractionList list;
  tree::WalkConfig wc;
  wc.use_quadrupole = true;
  tree::walk_original(tree, pset.pos()[0], wc, list);
  EXPECT_TRUE(list.has_quadrupoles());
  EXPECT_EQ(list.quad.size(), list.size());
  // Particle entries carry zero tensors.
  std::size_t zero_tensors = 0;
  for (const auto& q : list.quad) {
    if (q.is_zero()) ++zero_tensors;
  }
  EXPECT_GT(zero_tensors, 0u);
  // Without the flag the quad array stays empty even on a quad-built tree.
  wc.use_quadrupole = false;
  tree::walk_original(tree, pset.pos()[0], wc, list);
  EXPECT_FALSE(list.has_quadrupoles());

  // Group walk honors the flag too.
  wc.use_quadrupole = true;
  const auto groups = tree::collect_groups(tree, tree::GroupConfig{64});
  tree::walk_group(tree, groups[0], wc, list);
  EXPECT_TRUE(list.has_quadrupoles());
  EXPECT_EQ(list.quad.size(), list.size());
}

TEST(Quadrupole, NotComputedUnlessRequested) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 100, .seed = 11});
  tree::BhTree tree;
  tree.build(pset);
  EXPECT_FALSE(tree.has_quadrupoles());
}

}  // namespace
