// HttpListener: the loopback single-connection server behind
// g5run --live-port. A raw-socket client exercises the full
// accept/parse/respond/close cycle. In the TSan CI job's filter — the
// listener thread runs concurrently with the client and with stop().

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "util/http.hpp"

namespace {

using namespace g5;

/// Blocking one-shot HTTP client: send `request`, read to EOF.
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string out;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

util::HttpResponse demo_handler(std::string_view path) {
  util::HttpResponse r;
  if (path == "/status") {
    r.content_type = "application/json";
    r.body = "{\"ok\":true}";
  } else if (path == "/metrics") {
    r.body = "g5_up 1\n";
  } else {
    r.status = 404;
    r.body = "not found\n";
  }
  return r;
}

TEST(UtilHttp, ServesHandlerResponsesOnEphemeralPort) {
  util::HttpListener server(0, demo_handler);
  ASSERT_GT(server.port(), 0);

  const std::string resp = http_request(
      server.port(), "GET /status HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(resp.find("{\"ok\":true}"), std::string::npos);

  // One connection at a time, but sequential requests all serve.
  const std::string again = http_request(
      server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(again.find("g5_up 1"), std::string::npos);
}

TEST(UtilHttp, QueryStringsAreStrippedFromThePath) {
  util::HttpListener server(0, demo_handler);
  const std::string resp = http_request(
      server.port(), "GET /status?verbose=1 HTTP/1.1\r\n\r\n");
  EXPECT_NE(resp.find("{\"ok\":true}"), std::string::npos);
}

TEST(UtilHttp, UnknownPathIs404AndPostIs405) {
  util::HttpListener server(0, demo_handler);
  const std::string missing = http_request(
      server.port(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
  const std::string post = http_request(
      server.port(), "POST /status HTTP/1.1\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
}

TEST(UtilHttp, StopIsIdempotentAndUnbindsThePort) {
  util::HttpListener server(0, demo_handler);
  const std::uint16_t port = server.port();
  server.stop();
  server.stop();  // clean double-stop
  // After stop the port no longer accepts (connect may succeed into the
  // kernel backlog only if the socket were still open).
  util::HttpListener reuse(port, demo_handler);  // rebind works
  const std::string resp =
      http_request(port, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(resp.find("g5_up 1"), std::string::npos);
}

}  // namespace
