// Coincident-pair semantics: two distinct particles at the same softened
// position exert zero force on each other by symmetry but a finite mutual
// potential -m/eps. The host evaluators used to drop EVERY zero-separation
// pair (losing that potential); with self-mass information they now exclude
// only the target's own self term. The legacy (empty self-mass) behavior
// is kept for GRAPE-pipeline comparisons, which expect the hardware cut.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/engines.hpp"
#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "tree/walk.hpp"

namespace {

using namespace g5;
using math::Vec3d;

constexpr double kEps = 0.05;

TEST(CoincidentPairs, EvaluateListRecoversSoftenedPotential) {
  // Target at x with mass m1; the list holds the target itself plus a
  // distinct particle at exactly the same position with mass m2.
  const Vec3d x{0.25, -0.5, 1.0};
  const double m1 = 2.0, m2 = 3.0;
  tree::InteractionList list;
  list.push(x, m1);
  list.push(x, m2);

  Vec3d acc;
  double pot = 0.0;
  const double self_mass[] = {m1};
  tree::evaluate_list_host(list, {&x, 1}, kEps, {&acc, 1}, {&pot, 1},
                           self_mass);
  EXPECT_EQ(acc, Vec3d{});  // coincident force is exactly zero
  EXPECT_DOUBLE_EQ(pot, -m2 / kEps);  // ...but the potential survives

  // Legacy mode (no self-mass): both zero-separation entries dropped.
  tree::evaluate_list_host(list, {&x, 1}, kEps, {&acc, 1}, {&pot, 1});
  EXPECT_EQ(acc, Vec3d{});
  EXPECT_EQ(pot, 0.0);
}

TEST(CoincidentPairs, UnsoftenedZeroSeparationAlwaysSkipped) {
  const Vec3d x{1.0, 2.0, 3.0};
  tree::InteractionList list;
  list.push(x, 1.0);
  list.push(x, 4.0);
  Vec3d acc;
  double pot = 0.0;
  const double self_mass[] = {1.0};
  tree::evaluate_list_host(list, {&x, 1}, 0.0, {&acc, 1}, {&pot, 1},
                           self_mass);
  EXPECT_EQ(acc, Vec3d{});
  EXPECT_EQ(pot, 0.0);  // singular pair: no finite value to recover
}

TEST(CoincidentPairs, SelfAwareModeIsBitwiseIdenticalWithoutCoincidences) {
  // When no source coincides with the target except its own self term, the
  // correction is exactly 0.0 — results must match the legacy path bitwise.
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 64, .seed = 17});
  tree::InteractionList list;
  for (std::size_t j = 0; j < pset.size(); ++j) {
    list.push(pset.pos()[j], pset.mass()[j]);
  }
  for (std::size_t i = 0; i < pset.size(); ++i) {
    Vec3d acc_legacy, acc_aware;
    double pot_legacy = 0.0, pot_aware = 0.0;
    const Vec3d xi = pset.pos()[i];
    tree::evaluate_list_host(list, {&xi, 1}, kEps, {&acc_legacy, 1},
                             {&pot_legacy, 1});
    const double self_mass[] = {pset.mass()[i]};
    tree::evaluate_list_host(list, {&xi, 1}, kEps, {&acc_aware, 1},
                             {&pot_aware, 1}, self_mass);
    ASSERT_EQ(acc_legacy, acc_aware) << i;
    ASSERT_EQ(pot_legacy, pot_aware) << i;
  }
}

TEST(CoincidentPairs, HostForcesOnTargetsRecoversPotential) {
  const Vec3d x{0.0, 0.0, 0.0};
  const std::vector<Vec3d> sources{x, {1.0, 0.0, 0.0}};
  const std::vector<double> masses{5.0, 1.0};
  Vec3d acc;
  double pot = 0.0;
  const double i_mass[] = {2.0};  // target mass differs from the coincident
  grape::host_forces_on_targets({&x, 1}, sources, masses, kEps, {&acc, 1},
                                {&pot, 1}, i_mass);
  // Expected: full source 0 potential minus the target's own self share,
  // plus the far source.
  const double far = -1.0 / std::sqrt(1.0 + kEps * kEps);
  EXPECT_DOUBLE_EQ(pot, -(5.0 - 2.0) / kEps + far);
}

TEST(CoincidentPairs, EnginesAgreeOnCoincidentPair) {
  // Two distinct equal-mass particles at the same point plus a far third
  // body: the coincident pair must see each other's softened potential
  // through both host engines, and the mutual forces must cancel exactly.
  model::ParticleSet base;
  const Vec3d x{0.1, 0.2, 0.3};
  base.add(x, {}, 1.5);
  base.add(x, {}, 1.5);
  base.add({5.0, 0.0, 0.0}, {}, 1.0);

  const core::ForceParams fp{.eps = kEps, .theta = 0.5, .n_crit = 2,
                             .leaf_max = 1};
  auto run = [&](core::ForceEngine& engine) {
    model::ParticleSet pset = base;
    engine.compute(pset);
    return pset;
  };

  core::HostDirectEngine direct(fp);
  core::HostTreeEngine tree_orig(fp, core::HostTreeEngine::Mode::Original);
  core::HostTreeEngine tree_mod(fp, core::HostTreeEngine::Mode::Modified);
  const auto a = run(direct);
  const auto b = run(tree_orig);
  const auto c = run(tree_mod);

  // The mutual potential -m/eps = -30 dominates the far body's share.
  EXPECT_LT(a.pot()[0], -1.5 / kEps + 1.0);
  EXPECT_DOUBLE_EQ(a.pot()[0], a.pot()[1]);
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_NEAR(b.pot()[i], a.pot()[i], 1e-12) << i;
    ASSERT_NEAR(c.pot()[i], a.pot()[i], 1e-12) << i;
  }
  // Coincident bodies: identical acceleration (only the far body pulls).
  EXPECT_EQ(a.acc()[0], a.acc()[1]);
  EXPECT_NE(a.acc()[0], Vec3d{});
}

}  // namespace
