#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ic/plummer.hpp"
#include "ic/uniform.hpp"
#include "tree/tree.hpp"

namespace {

using namespace g5;
using tree::BhTree;
using tree::Node;
using tree::TreeBuildConfig;
using math::Vec3d;

TEST(BhTree, EmptyAndSingle) {
  BhTree tree;
  tree.build(std::span<const Vec3d>{}, std::span<const double>{});
  EXPECT_TRUE(tree.empty());

  const Vec3d p{1.0, 2.0, 3.0};
  const double m = 5.0;
  tree.build(std::span<const Vec3d>(&p, 1), std::span<const double>(&m, 1));
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_TRUE(tree.root().leaf);
  EXPECT_EQ(tree.root().count, 1u);
  EXPECT_DOUBLE_EQ(tree.root().mass, 5.0);
  EXPECT_EQ(tree.root().com, p);
}

TEST(BhTree, ChildrenPartitionParentRange) {
  const auto pset = ic::make_uniform_cube(2000, -1.0, 1.0, 1.0, 3);
  BhTree tree;
  tree.build(pset);
  for (std::size_t idx = 0; idx < tree.node_count(); ++idx) {
    const Node& node = tree.node(idx);
    if (node.leaf) continue;
    std::uint32_t covered = 0;
    std::uint32_t cursor = node.first;
    for (int oct = 0; oct < 8; ++oct) {
      if (node.child[oct] < 0) continue;
      const Node& child = tree.node(static_cast<std::size_t>(node.child[oct]));
      EXPECT_EQ(child.first, cursor) << "gap in node " << idx;
      EXPECT_EQ(child.parent, static_cast<std::int32_t>(idx));
      EXPECT_EQ(child.depth, node.depth + 1);
      cursor = child.first + child.count;
      covered += child.count;
    }
    EXPECT_EQ(covered, node.count) << "node " << idx;
  }
}

TEST(BhTree, MassAndComConsistentAtEveryNode) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 3000, .seed = 5});
  BhTree tree;
  tree.build(pset);
  EXPECT_NEAR(tree.root().mass, 1.0, 1e-12);
  for (std::size_t idx = 0; idx < tree.node_count(); ++idx) {
    const Node& node = tree.node(idx);
    if (node.leaf) continue;
    double m = 0.0;
    Vec3d com{};
    for (int oct = 0; oct < 8; ++oct) {
      if (node.child[oct] < 0) continue;
      const Node& child = tree.node(static_cast<std::size_t>(node.child[oct]));
      m += child.mass;
      com += child.mass * child.com;
    }
    EXPECT_NEAR(node.mass, m, 1e-12 * (1.0 + m));
    EXPECT_LT((node.com - com / m).norm(), 1e-9);
  }
}

TEST(BhTree, ParticlesInsideTheirLeafCell) {
  const auto pset = ic::make_uniform_cube(1000, 0.0, 4.0, 1.0, 7);
  BhTree tree;
  tree.build(pset);
  for (std::size_t idx = 0; idx < tree.node_count(); ++idx) {
    const Node& node = tree.node(idx);
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
      const Vec3d d = tree.sorted_pos()[k] - node.center;
      const double slack = node.half_size * (1.0 + 1e-9) + 1e-12;
      EXPECT_LE(std::fabs(d.x), slack) << idx;
      EXPECT_LE(std::fabs(d.y), slack) << idx;
      EXPECT_LE(std::fabs(d.z), slack) << idx;
    }
  }
}

TEST(BhTree, BradiusBoundsMembers) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 1000, .seed = 9});
  BhTree tree;
  tree.build(pset);
  for (std::size_t idx = 0; idx < tree.node_count(); ++idx) {
    const Node& node = tree.node(idx);
    double worst = 0.0;
    for (std::uint32_t k = node.first; k < node.first + node.count; ++k) {
      worst = std::max(worst, (tree.sorted_pos()[k] - node.center).norm());
    }
    EXPECT_NEAR(node.bradius, worst, 1e-12 + 1e-9 * worst);
  }
}

TEST(BhTree, LeafCapacityRespected) {
  const auto pset = ic::make_uniform_cube(5000, -1.0, 1.0, 1.0, 11);
  TreeBuildConfig cfg;
  cfg.leaf_max = 4;
  BhTree tree;
  tree.build(pset.pos(), pset.mass(), cfg);
  for (std::size_t idx = 0; idx < tree.node_count(); ++idx) {
    const Node& node = tree.node(idx);
    if (node.leaf && node.depth < cfg.max_depth) {
      EXPECT_LE(node.count, 4u) << idx;
    }
  }
}

TEST(BhTree, OriginalIndexIsPermutation) {
  const auto pset = ic::make_uniform_cube(777, -1.0, 1.0, 1.0, 13);
  BhTree tree;
  tree.build(pset);
  std::set<std::uint32_t> seen(tree.original_index().begin(),
                               tree.original_index().end());
  EXPECT_EQ(seen.size(), 777u);
  EXPECT_EQ(*seen.rbegin(), 776u);
  // Sorted attributes match the original ones through the map.
  for (std::size_t slot = 0; slot < 777; slot += 37) {
    const auto orig = tree.original_index()[slot];
    EXPECT_EQ(tree.sorted_pos()[slot], pset.pos()[orig]);
    EXPECT_DOUBLE_EQ(tree.sorted_mass()[slot], pset.mass()[orig]);
  }
}

TEST(BhTree, DuplicatePositionsHandled) {
  // All particles at the same point: depth cap forces a fat leaf.
  std::vector<Vec3d> pos(50, Vec3d{1.0, 1.0, 1.0});
  std::vector<double> mass(50, 2.0);
  BhTree tree;
  tree.build(pos, mass);
  EXPECT_NEAR(tree.root().mass, 100.0, 1e-9);
  EXPECT_GE(tree.node_count(), 1u);
  // Tree terminates (depth cap) rather than recursing forever.
  EXPECT_LE(tree.max_depth_reached(), 21);
}

TEST(BhTree, SortedOrderIsMortonOrder) {
  const auto pset = ic::make_uniform_cube(500, -1.0, 1.0, 1.0, 17);
  BhTree tree;
  tree.build(pset);
  std::uint64_t prev = 0;
  for (std::size_t k = 0; k < tree.particle_count(); ++k) {
    const auto key =
        math::morton_key(tree.sorted_pos()[k], tree.root_lo(),
                         tree.root_size());
    EXPECT_GE(key, prev) << k;
    prev = key;
  }
}

TEST(BhTree, MismatchedInputsThrow) {
  std::vector<Vec3d> pos(3);
  std::vector<double> mass(2);
  BhTree tree;
  EXPECT_THROW(tree.build(pos, mass), std::invalid_argument);
}

TEST(BhTree, RootCubeCoversAllParticles) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 500, .seed = 23});
  BhTree tree;
  tree.build(pset);
  const Vec3d lo = tree.root_lo();
  const double size = tree.root_size();
  for (const auto& p : pset.pos()) {
    EXPECT_GE(p.x, lo.x);
    EXPECT_LE(p.x, lo.x + size);
    EXPECT_GE(p.y, lo.y);
    EXPECT_LE(p.y, lo.y + size);
    EXPECT_GE(p.z, lo.z);
    EXPECT_LE(p.z, lo.z + size);
  }
}

}  // namespace
