#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "grape/host_reference.hpp"
#include "ic/plummer.hpp"
#include "ic/uniform.hpp"
#include "tree/groupwalk.hpp"
#include "util/stats.hpp"

namespace {

using namespace g5;
using math::Vec3d;
using tree::BhTree;
using tree::Group;
using tree::GroupConfig;
using tree::InteractionList;
using tree::WalkConfig;
using tree::WalkStats;

TEST(Groups, PartitionParticlesExactly) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 3000, .seed = 3});
  BhTree tree;
  tree.build(pset);
  for (std::uint32_t n_crit : {16u, 64u, 256u, 4096u}) {
    const auto groups = tree::collect_groups(tree, GroupConfig{n_crit});
    std::uint32_t covered = 0;
    std::uint32_t cursor = 0;
    for (const auto& g : groups) {
      EXPECT_EQ(g.first, cursor);  // contiguous, in order
      cursor = g.first + g.count;
      covered += g.count;
      EXPECT_GT(g.count, 0u);
    }
    EXPECT_EQ(covered, 3000u) << n_crit;
  }
}

TEST(Groups, RespectNcritExceptFatLeaves) {
  const auto pset = ic::make_uniform_cube(5000, -1.0, 1.0, 1.0, 5);
  BhTree tree;
  tree.build(pset);
  const auto groups = tree::collect_groups(tree, GroupConfig{128});
  for (const auto& g : groups) {
    const auto& node = tree.node(static_cast<std::size_t>(g.node));
    EXPECT_TRUE(g.count <= 128 || node.leaf);
  }
}

TEST(Groups, FewerGroupsWithLargerNcrit) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 5000, .seed = 7});
  BhTree tree;
  tree.build(pset);
  std::size_t prev = pset.size() + 1;
  for (std::uint32_t n_crit : {8u, 64u, 512u, 4096u}) {
    const auto n_groups =
        tree::collect_groups(tree, GroupConfig{n_crit}).size();
    EXPECT_LE(n_groups, prev);
    prev = n_groups;
  }
  EXPECT_EQ(tree::collect_groups(tree, GroupConfig{100000}).size(), 1u);
}

TEST(GroupWalk, MassClosurePerList) {
  // External cells + external particles + own members = everything.
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 2000, .seed = 9});
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  for (const auto& g : tree::collect_groups(tree, GroupConfig{128})) {
    tree::walk_group(tree, g, WalkConfig{0.75}, list);
    double m = 0.0;
    for (double mm : list.mass) m += mm;
    EXPECT_NEAR(m, 1.0, 1e-12);
  }
}

TEST(GroupWalk, OwnMembersAppearAsDirectSources) {
  const auto pset = ic::make_uniform_cube(600, -1.0, 1.0, 1.0, 11);
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  const auto groups = tree::collect_groups(tree, GroupConfig{64});
  const Group& g = groups[groups.size() / 2];
  tree::walk_group(tree, g, WalkConfig{0.75}, list);
  // The last g.count entries are exactly the group's own particles.
  ASSERT_GE(list.size(), static_cast<std::size_t>(g.count));
  for (std::uint32_t k = 0; k < g.count; ++k) {
    const std::size_t idx = list.size() - g.count + k;
    EXPECT_EQ(list.pos[idx], tree.sorted_pos()[g.first + k]);
  }
}

TEST(GroupWalk, CountMatchesMaterializedList) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 1500, .seed = 13});
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  for (const auto& g : tree::collect_groups(tree, GroupConfig{100})) {
    WalkStats ws_a, ws_b;
    const auto len_a = tree::count_group(tree, g, WalkConfig{0.75}, &ws_a);
    const auto len_b = tree::walk_group(tree, g, WalkConfig{0.75}, list, &ws_b);
    EXPECT_EQ(len_a, len_b);
    EXPECT_EQ(ws_a.interactions, ws_b.interactions);
    EXPECT_EQ(ws_a.list_entries, ws_b.list_entries);
  }
}

TEST(GroupWalk, ForcesMatchDirectSum) {
  const auto pset = ic::make_plummer(ic::PlummerConfig{.n = 2500, .seed = 17});
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  const double eps = 0.01;
  util::RunningStat err;
  for (const auto& g : tree::collect_groups(tree, GroupConfig{128})) {
    tree::walk_group(tree, g, WalkConfig{0.5}, list);
    std::vector<Vec3d> acc(g.count), ref(g.count);
    std::vector<double> pot(g.count), pref(g.count);
    const std::span<const Vec3d> targets(tree.sorted_pos().data() + g.first,
                                         g.count);
    tree::evaluate_list_host(list, targets, eps, acc, pot);
    grape::host_forces_on_targets(targets, tree.sorted_pos(),
                                  tree.sorted_mass(), eps, ref, pref);
    for (std::uint32_t k = 0; k < g.count; ++k) {
      if (ref[k].norm() > 0.0) err.add((acc[k] - ref[k]).norm() / ref[k].norm());
    }
  }
  EXPECT_LT(err.rms(), 3e-3);   // theta = 0.5 tree error
  EXPECT_LT(err.max(), 5e-2);
}

TEST(GroupWalk, SharedListIsConservativeForWholeGroup) {
  // The group MAC measures distance from the group's bounding sphere, so
  // the shared list must be at least as accurate as a per-particle list
  // for the *worst-placed* member: check the max member error stays at the
  // tree-error scale rather than blowing up at group edges.
  const auto pset = ic::make_uniform_cube(3000, -1.0, 1.0, 1.0, 19);
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  const auto groups = tree::collect_groups(tree, GroupConfig{512});
  const double eps = 0.02;
  double worst = 0.0;
  for (const auto& g : groups) {
    tree::walk_group(tree, g, WalkConfig{0.75}, list);
    std::vector<Vec3d> acc(g.count), ref(g.count);
    std::vector<double> pot(g.count), pref(g.count);
    const std::span<const Vec3d> targets(tree.sorted_pos().data() + g.first,
                                         g.count);
    tree::evaluate_list_host(list, targets, eps, acc, pot);
    grape::host_forces_on_targets(targets, tree.sorted_pos(),
                                  tree.sorted_mass(), eps, ref, pref);
    for (std::uint32_t k = 0; k < g.count; ++k) {
      if (ref[k].norm() > 0.0) {
        worst = std::max(worst, (acc[k] - ref[k]).norm() / ref[k].norm());
      }
    }
  }
  EXPECT_LT(worst, 0.05);
}

TEST(GroupWalk, StatsCountInteractionsTimesGroupSize) {
  const auto pset = ic::make_uniform_cube(800, -1.0, 1.0, 1.0, 23);
  BhTree tree;
  tree.build(pset);
  InteractionList list;
  WalkStats stats;
  const auto groups = tree::collect_groups(tree, GroupConfig{64});
  for (const auto& g : groups) {
    const auto len = tree::walk_group(tree, g, WalkConfig{0.75}, list, &stats);
    EXPECT_EQ(len, list.size());
  }
  EXPECT_EQ(stats.lists, groups.size());
  // interactions = sum(len * count) >= sum(len) = list_entries.
  EXPECT_GE(stats.interactions, stats.list_entries);
}

TEST(GroupWalk, EmptyTreeSafe) {
  BhTree tree;
  tree.build(std::span<const Vec3d>{}, std::span<const double>{});
  EXPECT_TRUE(tree::collect_groups(tree, GroupConfig{64}).empty());
}

}  // namespace
