#include <gtest/gtest.h>

#include <cmath>

#include "model/cosmology.hpp"
#include "model/units.hpp"

namespace {

using g5::model::Cosmology;
using g5::model::CosmologyParams;

// The paper's background is SCDM / Einstein-de Sitter, for which
// everything has closed forms — they anchor the general quadrature code.

TEST(Units, GravitationalConstantValue) {
  // G in (Mpc, 1e10 Msun, Gyr): ~4.5e-5.
  const double g = g5::model::gravitational_constant();
  EXPECT_NEAR(g, 4.50e-5, 0.02e-5);
}

TEST(Units, Hubble100InGyr) {
  // 100 km/s/Mpc = 0.1023 Gyr^-1.
  EXPECT_NEAR(g5::model::hubble100_per_gyr(), 0.10227, 1e-4);
}

TEST(Units, CriticalDensity) {
  // rho_c = 2.775e11 h^2 Msun/Mpc^3 = 27.75 h^2 in (1e10 Msun)/Mpc^3.
  EXPECT_NEAR(g5::model::critical_density(1.0), 27.75, 0.1);
  EXPECT_NEAR(g5::model::critical_density(0.5), 27.75 * 0.25, 0.05);
}

TEST(Cosmology, PaperParticleMassConsistency) {
  // Section 5: 2,159,038 particles of 1.7e10 Msun in a 50 Mpc sphere must
  // equal the SCDM (h=0.5, Omega=1) mean density — this pins the paper's
  // background cosmology.
  const Cosmology cosmo(CosmologyParams::scdm());
  const double volume = 4.0 / 3.0 * M_PI * 50.0 * 50.0 * 50.0;
  const double mass = cosmo.mean_matter_density() * volume;  // 1e10 Msun
  EXPECT_NEAR(mass / 1.7, 2159038.0, 0.05 * 2159038.0);
}

TEST(Cosmology, EdsHubbleClosedForm) {
  const Cosmology cosmo(CosmologyParams::scdm());
  const double h0 = cosmo.hubble0();
  for (double a : {0.04, 0.1, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(cosmo.hubble(a), h0 * std::pow(a, -1.5), 1e-9 * h0)
        << "a=" << a;
  }
}

TEST(Cosmology, EdsAgeClosedForm) {
  const Cosmology cosmo(CosmologyParams::scdm());
  const double h0 = cosmo.hubble0();
  // t(a) = (2/3) a^{3/2} / H0.
  for (double a : {0.04, 0.2, 1.0}) {
    EXPECT_NEAR(cosmo.age(a), 2.0 / 3.0 * std::pow(a, 1.5) / h0,
                1e-6 / h0)
        << "a=" << a;
  }
  // The paper's span: z=24 (a=0.04) to now is ~12.9 Gyr for h=0.5.
  EXPECT_NEAR(cosmo.age(1.0) - cosmo.age(0.04), 12.93, 0.05);
}

TEST(Cosmology, ScaleFactorInvertsAge) {
  const Cosmology cosmo(CosmologyParams::scdm());
  for (double a : {0.05, 0.3, 0.9, 1.5}) {
    EXPECT_NEAR(cosmo.scale_factor(cosmo.age(a)), a, 1e-6) << a;
  }
}

TEST(Cosmology, EdsGrowthFactorIsScaleFactor) {
  const Cosmology cosmo(CosmologyParams::scdm());
  for (double a : {0.04, 0.2, 0.7, 1.0}) {
    EXPECT_NEAR(cosmo.growth_factor(a), a, 1e-3 * a) << a;
  }
}

TEST(Cosmology, EdsGrowthRateIsUnity) {
  const Cosmology cosmo(CosmologyParams::scdm());
  for (double a : {0.04, 0.5, 1.0}) {
    EXPECT_NEAR(cosmo.growth_rate(a), 1.0, 1e-3) << a;
  }
}

TEST(Cosmology, LambdaSuppressesGrowth) {
  // A flat LCDM model grows slower than EdS near a = 1 (f ~ Om^0.55).
  const Cosmology lcdm(CosmologyParams{0.3, 0.7, 0.7});
  EXPECT_LT(lcdm.growth_rate(1.0), 0.6);
  EXPECT_GT(lcdm.growth_rate(1.0), 0.4);
  EXPECT_NEAR(lcdm.growth_rate(1.0), std::pow(0.3, 0.55), 0.02);
  // Normalization: D(1) = 1 by construction.
  EXPECT_NEAR(lcdm.growth_factor(1.0), 1.0, 1e-12);
  // High-z LCDM behaves like EdS: D ~ a (up to normalization factor).
  const double ratio = lcdm.growth_factor(0.02) / lcdm.growth_factor(0.01);
  EXPECT_NEAR(ratio, 2.0, 0.01);
}

TEST(Cosmology, RedshiftConversions) {
  EXPECT_DOUBLE_EQ(Cosmology::a_of_z(0.0), 1.0);
  EXPECT_DOUBLE_EQ(Cosmology::a_of_z(24.0), 0.04);
  EXPECT_DOUBLE_EQ(Cosmology::z_of_a(0.04), 24.0);
}

TEST(Cosmology, Validation) {
  EXPECT_THROW(Cosmology(CosmologyParams{0.0, 0.0, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(Cosmology(CosmologyParams{1.0, 0.0, 0.0}),
               std::invalid_argument);
  const Cosmology cosmo(CosmologyParams::scdm());
  EXPECT_THROW((void)cosmo.hubble(0.0), std::invalid_argument);
  EXPECT_THROW((void)cosmo.age(-1.0), std::invalid_argument);
  EXPECT_THROW((void)cosmo.scale_factor(0.0), std::invalid_argument);
}

}  // namespace
