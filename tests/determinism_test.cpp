// Bit-level reproducibility: identical seeds and configurations must give
// identical trajectories — across engines, integrators and the emulated
// hardware. Regressions here usually mean hidden global state or
// uninitialized reads.
#include <gtest/gtest.h>

#include "core/blockstep.hpp"
#include "core/comoving.hpp"
#include "core/engines.hpp"
#include "core/simulation.hpp"
#include "ic/plummer.hpp"
#include "ic/zeldovich.hpp"
#include "model/units.hpp"
#include "obs/obs.hpp"

namespace {

using namespace g5;
using core::ForceParams;

template <typename RunFn>
void expect_identical_runs(RunFn&& run) {
  const model::ParticleSet a = run();
  const model::ParticleSet b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.pos()[i], b.pos()[i]) << i;
    ASSERT_EQ(a.vel()[i], b.vel()[i]) << i;
  }
}

TEST(Determinism, SharedStepAllEngines) {
  for (const char* name :
       {"host-direct", "host-tree-modified", "grape-tree"}) {
    expect_identical_runs([&] {
      auto pset = ic::make_plummer(ic::PlummerConfig{.n = 128, .seed = 3});
      auto engine = core::make_engine(
          name, ForceParams{.eps = 0.05, .theta = 0.6, .n_crit = 32});
      core::SimulationConfig cfg;
      cfg.dt = 0.01;
      cfg.steps = 8;
      cfg.log_every = 0;
      core::Simulation sim(*engine, cfg);
      sim.run(pset);
      return pset;
    });
  }
}

TEST(Determinism, BlockstepRuns) {
  expect_identical_runs([] {
    auto pset = ic::make_plummer(ic::PlummerConfig{.n = 128, .seed = 5});
    core::HostDirectEngine engine((ForceParams{.eps = 0.05}));
    core::BlockStepConfig cfg;
    cfg.dt_max = 0.02;
    cfg.max_rungs = 3;
    core::BlockTimestepIntegrator block(cfg);
    block.prime(pset, engine);
    for (int blk = 0; blk < 4; ++blk) block.step_block(pset, engine);
    return pset;
  });
}

TEST(Determinism, ComovingRuns) {
  expect_identical_runs([] {
    ic::CosmologicalSphereConfig cc;
    cc.grid_n = 8;
    cc.seed = 7;
    const auto icr = ic::make_cosmological_sphere(cc);
    auto pset = icr.particles;
    const double g = model::gravitational_constant();
    for (auto& m : pset.mass()) m *= g;
    const model::Cosmology cosmo(model::CosmologyParams::scdm());
    core::ComovingSimulation::physical_to_comoving(pset, cosmo, icr.a_start);
    core::HostTreeEngine engine(
        ForceParams{.eps = 0.1, .theta = 0.6, .n_crit = 32},
        core::HostTreeEngine::Mode::Modified);
    core::ComovingConfig cfg;
    cfg.a_start = icr.a_start;
    cfg.a_end = 0.2;
    cfg.steps = 8;
    core::ComovingSimulation sim(engine, cfg);
    sim.run(pset);
    return pset;
  });
}

TEST(Determinism, PipelinedGrapePathsMatchSynchronous) {
  // The async pipeline (walks overlapping device evaluation, boards
  // running in parallel) must be bitwise-identical to the synchronous
  // single-lane path: same group order, same chunking, same per-board
  // reduction order.
  for (const char* name : {"grape-tree", "grape-direct"}) {
    auto run = [&](std::uint32_t threads, std::uint32_t depth) {
      auto pset = ic::make_plummer(ic::PlummerConfig{.n = 512, .seed = 21});
      ForceParams fp{.eps = 0.05, .theta = 0.6, .n_crit = 64};
      fp.threads = threads;
      fp.pipeline_depth = depth;
      auto engine = core::make_engine(name, fp);
      engine->compute(pset);
      return pset;
    };
    const auto ref = run(1, 0);  // synchronous reference
    const std::pair<std::uint32_t, std::uint32_t> combos[] = {
        {1, 2}, {4, 2}, {4, 3}, {2, 8}};
    for (const auto& [threads, depth] : combos) {
      const auto got = run(threads, depth);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(got.acc()[i], ref.acc()[i])
            << name << " threads=" << threads << " depth=" << depth << " " << i;
        ASSERT_EQ(got.pot()[i], ref.pot()[i])
            << name << " threads=" << threads << " depth=" << depth << " " << i;
      }
    }
  }
}

TEST(Determinism, PipelinedOverlapGaugePositive) {
  // Bitwise identity (above) must not come from secretly serializing
  // the pipeline: with instrumentation on, a pipelined run spanning
  // several batches must report walk time hidden behind device
  // evaluation (g5.pipeline.overlap > 0). n_crit=16 at N=2048 yields
  // far more groups than one submit batch, so later batches always walk
  // with earlier jobs in flight.
  obs::set_enabled(true);
  obs::Registry::instance().reset_values();
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = 2048, .seed = 23});
  ForceParams fp{.eps = 0.05, .theta = 0.6, .n_crit = 16};
  fp.threads = 1;
  fp.pipeline_depth = 2;
  auto engine = core::make_engine("grape-tree", fp);
  engine->compute(pset);
  const double overlap = obs::gauge("g5.pipeline.overlap").value();
  EXPECT_GT(overlap, 0.0);
  EXPECT_LE(overlap, 1.0);
  obs::set_enabled(false);
  obs::Registry::instance().reset_values();
}

TEST(Determinism, PipelinedTargetForcesMatchSynchronous) {
  // Same check for the scattered-subset path (block-timestep style).
  std::vector<std::uint32_t> targets;
  for (std::uint32_t t = 1; t < 256; t += 3) targets.push_back(t);
  auto run = [&](std::uint32_t threads, std::uint32_t depth) {
    auto pset = ic::make_plummer(ic::PlummerConfig{.n = 256, .seed = 29});
    pset.zero_force();
    ForceParams fp{.eps = 0.05, .theta = 0.6, .n_crit = 32};
    fp.threads = threads;
    fp.pipeline_depth = depth;
    auto engine = core::make_engine("grape-tree", fp);
    engine->compute_targets(pset, targets);
    return pset;
  };
  const auto ref = run(1, 0);
  const auto got = run(4, 2);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(got.acc()[i], ref.acc()[i]) << i;
    ASSERT_EQ(got.pot()[i], ref.pot()[i]) << i;
  }
}

TEST(Determinism, FreshDevicePerRun) {
  // Two devices constructed from the same config behave identically even
  // after one has processed unrelated work (no cross-device state).
  auto run_with = [](grape::Grape5Device& device) {
    auto pset = ic::make_plummer(ic::PlummerConfig{.n = 64, .seed = 11});
    core::GrapeDirectEngine engine(ForceParams{.eps = 0.05},
                                   std::shared_ptr<grape::Grape5Device>(
                                       &device, [](grape::Grape5Device*) {}));
    engine.compute(pset);
    return pset;
  };
  grape::Grape5Device d1, d2;
  // Warm d1 with unrelated work first.
  {
    auto other = ic::make_plummer(ic::PlummerConfig{.n = 32, .seed = 99});
    core::GrapeDirectEngine warm(ForceParams{.eps = 0.1},
                                 std::shared_ptr<grape::Grape5Device>(
                                     &d1, [](grape::Grape5Device*) {}));
    warm.compute(other);
  }
  const auto a = run_with(d1);
  const auto b = run_with(d2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.acc()[i], b.acc()[i]) << i;
    ASSERT_EQ(a.pot()[i], b.pot()[i]) << i;
  }
}

}  // namespace
