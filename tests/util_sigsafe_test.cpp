// SigsafeWriter: the no-allocation, no-stdio formatter the crash
// handler serializes post-mortems with. Since it hand-rolls double
// formatting, the tests pin the exact output for representative values
// and round-trip everything else through strtod.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#include "util/sigsafe.hpp"

namespace {

using g5::util::SigsafeWriter;

std::string format_u64(std::uint64_t v) {
  char buf[64];
  SigsafeWriter w(buf, sizeof(buf));
  w.append_u64(v);
  return std::string(buf, w.size());
}

std::string format_i64(std::int64_t v) {
  char buf[64];
  SigsafeWriter w(buf, sizeof(buf));
  w.append_i64(v);
  return std::string(buf, w.size());
}

std::string format_double(double v) {
  char buf[64];
  SigsafeWriter w(buf, sizeof(buf));
  w.append_double(v);
  return std::string(buf, w.size());
}

TEST(UtilSigsafe, UnsignedIntegers) {
  EXPECT_EQ(format_u64(0), "0");
  EXPECT_EQ(format_u64(7), "7");
  EXPECT_EQ(format_u64(1234567890123456789ULL), "1234567890123456789");
  EXPECT_EQ(format_u64(std::numeric_limits<std::uint64_t>::max()),
            "18446744073709551615");
}

TEST(UtilSigsafe, SignedIntegers) {
  EXPECT_EQ(format_i64(0), "0");
  EXPECT_EQ(format_i64(-1), "-1");
  EXPECT_EQ(format_i64(42), "42");
  EXPECT_EQ(format_i64(std::numeric_limits<std::int64_t>::min()),
            "-9223372036854775808");
  EXPECT_EQ(format_i64(std::numeric_limits<std::int64_t>::max()),
            "9223372036854775807");
}

TEST(UtilSigsafe, DoubleSpecialValues) {
  // JSON has no NaN/Inf literals; the writer must emit null so the
  // document stays parseable no matter what a gauge held at crash time.
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(-0.0), "0");
}

TEST(UtilSigsafe, DoublePlainNotation) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(-2.5), "-2.5");
  EXPECT_EQ(format_double(1000.0), "1000");
  EXPECT_EQ(format_double(0.001), "0.001");
}

TEST(UtilSigsafe, DoubleRoundTripsThroughStrtod) {
  // 9 significant digits: parse-back must agree to ~1e-8 relative.
  const double cases[] = {3.14159265358979,  1.5e-7,   6.02e23, -1.23456789e-12,
                          0.12345678901234,  8.125,    1e15,    1e16,
                          -9.87654321098765, 4.9e-324, 1e-5,    123456.789};
  for (const double v : cases) {
    const std::string s = format_double(v);
    const double back = std::strtod(s.c_str(), nullptr);
    if (v == 0.0) {
      EXPECT_EQ(back, 0.0) << s;
    } else {
      EXPECT_NEAR(back / v, 1.0, 1e-7) << "formatted '" << s << "' from " << v;
    }
  }
}

TEST(UtilSigsafe, JsonStringEscaping) {
  char buf[128];
  SigsafeWriter w(buf, sizeof(buf));
  w.append_json_string("a\"b\\c\n\t\x01z");
  EXPECT_EQ(std::string(buf, w.size()),
            "\"a\\\"b\\\\c\\u000a\\u0009\\u0001z\"");
}

TEST(UtilSigsafe, TruncationIsDetectedNotOverflowed) {
  char buf[8];
  SigsafeWriter w(buf, sizeof(buf));
  w.append("12345678901234567890");
  EXPECT_TRUE(w.truncated());
  EXPECT_LE(w.size(), sizeof(buf));
  // Whatever fit must be a prefix of the input.
  EXPECT_EQ(std::string(buf, w.size()), "12345678");
}

TEST(UtilSigsafe, ClearRestartsTheBuffer) {
  char buf[32];
  SigsafeWriter w(buf, sizeof(buf));
  w.append("hello");
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.truncated());
  w.append_char('x');
  EXPECT_EQ(std::string(buf, w.size()), "x");
}

}  // namespace
