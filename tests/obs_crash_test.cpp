// Crash post-mortem: forced crashes in forked children must leave a
// schema-valid g5.postmortem.v1 dump behind. SIGABRT is the primary
// crash vector (sanitizers own SIGSEGV); the manual dump and terminate
// paths are covered too. In the TSan CI job's filter.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unistd.h>

#include "obs/obs.hpp"
#include "util/thread.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define G5_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define G5_UNDER_SANITIZER 1
#else
#define G5_UNDER_SANITIZER 0
#endif
#else
#define G5_UNDER_SANITIZER 0
#endif

namespace {

using namespace g5;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

obs::StepMetrics step_record(std::uint64_t step) {
  obs::StepMetrics m;
  m.step = step;
  m.t_sim = static_cast<double>(step) * 0.01;
  m.interactions = step * 1000;
  return m;
}

/// Seed the flight recorder with a recognizable in-flight state: a few
/// step records and an open span whose path must appear in the dump.
void seed_flight_state() {
  obs::set_enabled(true);
  util::set_current_thread_name("g5-crash-child");
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  fr.arm();
  for (std::uint64_t s = 1; s <= 10; ++s) fr.record_step(step_record(s));
  obs::gauge("g5.grape.queue_depth").set(3.0);
  obs::gauge("g5.grape.in_flight").set(2.0);
}

/// Fork, run `crash` in the child after installing handlers + seeding
/// state, and return the child's postmortem document (or "" if none).
template <typename CrashFn>
std::string crash_in_child(const std::string& path, int expect_sig,
                           CrashFn crash) {
  std::remove(path.c_str());
  const pid_t pid = fork();
  if (pid == 0) {
    seed_flight_state();
    obs::crash::install(path);
    obs::crash::refresh();
    obs::Span span("doomed", "test");
    crash();
    ::_exit(97);  // crash() must not return
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) return "";
  EXPECT_TRUE(WIFSIGNALED(wstatus))
      << "child should die by signal, wstatus=" << wstatus;
  if (WIFSIGNALED(wstatus)) {
    // The handler re-raises with the default disposition, so the exit
    // status still names the original signal.
    EXPECT_EQ(WTERMSIG(wstatus), expect_sig);
  }
  return slurp(path);
}

class ObsCrash : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::FlightRecorder::instance().disarm();
    obs::FlightRecorder::instance().clear();
    obs::set_enabled(false);
  }
};

TEST_F(ObsCrash, SigabrtProducesSchemaValidDump) {
  const std::string path = ::testing::TempDir() + "crash_abrt.json";
  const std::string doc =
      crash_in_child(path, SIGABRT, [] { std::abort(); });
  ASSERT_FALSE(doc.empty()) << "no postmortem written";
  EXPECT_NE(doc.find("\"schema\":\"g5.postmortem.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"signal\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"SIGABRT\""), std::string::npos);
  // The last >= 8 step records ride along, newest last.
  EXPECT_NE(doc.find("\"step\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"step\":10"), std::string::npos);
  // The open span path and the thread name at crash time.
  EXPECT_NE(doc.find("/doomed"), std::string::npos);
  EXPECT_NE(doc.find("g5-crash-child"), std::string::npos);
  // Device queue state via the cached gauges.
  EXPECT_NE(doc.find("\"queue_depth\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"in_flight\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"rss_bytes\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsCrash, SigtermDumpsToo) {
  const std::string path = ::testing::TempDir() + "crash_term.json";
  const std::string doc =
      crash_in_child(path, SIGTERM, [] { ::raise(SIGTERM); });
  ASSERT_FALSE(doc.empty());
  EXPECT_NE(doc.find("\"name\":\"SIGTERM\""), std::string::npos);
  std::remove(path.c_str());
}

#if !G5_UNDER_SANITIZER
// ASan/TSan claim SIGSEGV for their own reporting; only exercise the
// hardware-fault path in plain builds.
TEST_F(ObsCrash, SigsegvProducesDump) {
  const std::string path = ::testing::TempDir() + "crash_segv.json";
  const std::string doc =
      crash_in_child(path, SIGSEGV, [] { ::raise(SIGSEGV); });
  ASSERT_FALSE(doc.empty());
  EXPECT_NE(doc.find("\"name\":\"SIGSEGV\""), std::string::npos);
  std::remove(path.c_str());
}
#endif

TEST_F(ObsCrash, UncaughtExceptionHitsTheTerminateHook) {
  const std::string path = ::testing::TempDir() + "crash_terminate.json";
  // terminate() ends in abort(), so the child still dies with SIGABRT.
  // noexcept stops the unwind at the lambda (gtest would otherwise
  // catch the exception before it ever reached std::terminate).
  const std::string doc = crash_in_child(path, SIGABRT, []() noexcept {
    throw std::runtime_error("unhandled in child");
  });
  ASSERT_FALSE(doc.empty());
  EXPECT_NE(doc.find("\"kind\":\"terminate\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsCrash, ManualPostmortemInProcess) {
  // write_postmortem_now exercises serialize + write without dying;
  // runs in-process (install only re-points handlers, which the gtest
  // runner tolerates because nothing here raises).
  const std::string path = ::testing::TempDir() + "crash_manual.json";
  std::remove(path.c_str());
  obs::set_enabled(true);
  auto& fr = obs::FlightRecorder::instance();
  fr.clear();
  fr.arm();
  for (std::uint64_t s = 1; s <= 3; ++s) fr.record_step(step_record(s));
  obs::crash::install(path);
  obs::crash::refresh();
  const std::size_t wrote = obs::crash::write_postmortem_now("unit-test");
  EXPECT_GT(wrote, 0u);
  const std::string doc = slurp(path);
  EXPECT_NE(doc.find("\"schema\":\"g5.postmortem.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"manual\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"unit-test\""), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\":{"), std::string::npos);
  // Repeatable, unlike the one-shot signal path.
  EXPECT_GT(obs::crash::write_postmortem_now("again"), 0u);
  std::remove(path.c_str());
}

}  // namespace
