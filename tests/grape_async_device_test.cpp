// grape::AsyncDevice: submission-order evaluation, bitwise equality with
// the synchronous driver path, completion accounting, and error
// poisoning. Runs under the TSan CI job.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "grape/async_device.hpp"
#include "ic/plummer.hpp"

namespace {

using namespace g5;

struct Problem {
  std::vector<math::Vec3d> pos;
  std::vector<double> mass;
};

Problem make_problem(std::size_t n, std::uint64_t seed) {
  auto pset = ic::make_plummer(ic::PlummerConfig{.n = n, .seed = seed});
  Problem p;
  p.pos.assign(pset.pos().begin(), pset.pos().end());
  p.mass.assign(pset.mass().begin(), pset.mass().end());
  return p;
}

void configure(grape::Grape5Device& device) {
  device.set_range(-20.0, 20.0, 1e-6);
  device.set_eps(0.05);
}

TEST(AsyncDevice, MatchesSynchronousBitwise) {
  const Problem p = make_problem(256, 17);
  const std::size_t n = p.pos.size();

  // Synchronous reference on a fresh device.
  std::vector<math::Vec3d> acc_ref(n);
  std::vector<double> pot_ref(n);
  {
    grape::Grape5Device device;
    configure(device);
    device.compute_forces_chunked(p.pos, p.pos, p.mass, acc_ref, pot_ref);
  }

  // Async path: the same work split into several jobs.
  std::vector<math::Vec3d> acc(n);
  std::vector<double> pot(n);
  auto device = std::make_shared<grape::Grape5Device>();
  configure(*device);
  grape::AsyncDevice async(device);
  const std::size_t chunk = 64;
  std::vector<grape::ForceJob> jobs((n + chunk - 1) / chunk);
  std::size_t j = 0;
  for (std::size_t base = 0; base < n; base += chunk, ++j) {
    const std::size_t m = std::min(chunk, n - base);
    grape::ForceJob& job = jobs[j];
    job.i_pos = std::span<const math::Vec3d>(p.pos.data() + base, m);
    job.j_pos = p.pos;
    job.j_mass = p.mass;
    job.acc = std::span<math::Vec3d>(acc.data() + base, m);
    job.pot = std::span<double>(pot.data() + base, m);
    async.submit(job);
  }
  async.drain();

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(acc[i], acc_ref[i]) << i;
    ASSERT_EQ(pot[i], pot_ref[i]) << i;
  }

  // Per-job accounting sums to the device's own account.
  const grape::AsyncDevice::Completed done = async.take_completed();
  EXPECT_EQ(done.jobs, jobs.size());
  EXPECT_EQ(done.interactions, device->system().account().interactions);
  std::uint64_t per_job = 0;
  for (const auto& job : jobs) per_job += job.interactions;
  EXPECT_EQ(per_job, done.interactions);
  // A second take returns the zeroed aggregate.
  EXPECT_EQ(async.take_completed().jobs, 0u);
}

TEST(AsyncDevice, TicketsOrderAndWaitFor) {
  const Problem p = make_problem(96, 23);
  const std::size_t n = p.pos.size();
  std::vector<math::Vec3d> acc(n);
  std::vector<double> pot(n);
  auto device = std::make_shared<grape::Grape5Device>();
  configure(*device);
  grape::AsyncDevice::Config cfg;
  cfg.queue_capacity = 2;  // force backpressure
  grape::AsyncDevice async(device, cfg);

  std::vector<grape::ForceJob> jobs(n / 32);
  grape::AsyncDevice::Ticket last = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    grape::ForceJob& job = jobs[j];
    job.i_pos = std::span<const math::Vec3d>(p.pos.data() + j * 32, 32);
    job.j_pos = p.pos;
    job.j_mass = p.mass;
    job.acc = std::span<math::Vec3d>(acc.data() + j * 32, 32);
    job.pot = std::span<double>(pot.data() + j * 32, 32);
    const grape::AsyncDevice::Ticket t = async.submit(job);
    EXPECT_EQ(t, last + 1);  // tickets are dense and increasing
    last = t;
  }
  EXPECT_EQ(async.submitted(), last);
  async.wait_for(last);  // implies all earlier tickets completed
  for (const auto& job : jobs) EXPECT_GT(job.interactions, 0u);
  EXPECT_FALSE(async.failed());
  async.drain();  // no-op: everything already completed
}

TEST(AsyncDevice, DeviceErrorPoisonsAndRethrows) {
  const Problem p = make_problem(32, 5);
  std::vector<math::Vec3d> acc(p.pos.size());
  std::vector<double> pot(p.pos.size());
  // No set_range: the device throws on first use, on the submitter thread.
  auto device = std::make_shared<grape::Grape5Device>();
  grape::AsyncDevice async(device);
  grape::ForceJob job;
  job.i_pos = p.pos;
  job.j_pos = p.pos;
  job.j_mass = p.mass;
  job.acc = acc;
  job.pot = pot;
  const grape::AsyncDevice::Ticket t = async.submit(job);
  EXPECT_THROW(async.wait_for(t), std::logic_error);
  EXPECT_TRUE(async.failed());
  // Later jobs complete without running; waits still terminate and
  // rethrow the original error.
  grape::ForceJob job2 = job;
  async.submit(job2);
  EXPECT_THROW(async.drain(), std::logic_error);
  EXPECT_EQ(job2.interactions, 0u);
}

TEST(AsyncDevice, DestructorFinishesQueuedJobs) {
  const Problem p = make_problem(64, 9);
  std::vector<math::Vec3d> acc(p.pos.size());
  std::vector<double> pot(p.pos.size());
  std::vector<grape::ForceJob> jobs(4);
  {
    auto device = std::make_shared<grape::Grape5Device>();
    configure(*device);
    grape::AsyncDevice async(device);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      grape::ForceJob& job = jobs[j];
      job.i_pos = std::span<const math::Vec3d>(p.pos.data() + j * 16, 16);
      job.j_pos = p.pos;
      job.j_mass = p.mass;
      job.acc = std::span<math::Vec3d>(acc.data() + j * 16, 16);
      job.pot = std::span<double>(pot.data() + j * 16, 16);
      async.submit(job);
    }
    // No drain: destruction closes the queue and finishes every job.
  }
  for (const auto& job : jobs) EXPECT_GT(job.interactions, 0u);
}

TEST(AsyncDevice, NullDeviceThrows) {
  EXPECT_THROW(grape::AsyncDevice(nullptr), std::invalid_argument);
}

}  // namespace
