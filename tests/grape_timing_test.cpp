#include <gtest/gtest.h>

#include <cmath>

#include "grape/timing.hpp"

namespace {

using namespace g5::grape;

TEST(TimingModel, TheoreticalPeakIsPaperValue) {
  const SystemConfig cfg = SystemConfig::paper_system();
  EXPECT_NEAR(cfg.peak_flops(), 109.44e9, 1.0);
  EXPECT_NEAR(cfg.peak_interaction_rate(), 2.88e9, 1.0);
}

TEST(TimingModel, FullSlotsReachPeak) {
  const SystemConfig cfg = SystemConfig::paper_system();
  const TimingModel model(cfg);
  // ni filling every virtual slot exactly: compute rate == peak.
  const std::size_t ni = cfg.boards * cfg.board.i_slots() / cfg.boards;
  EXPECT_NEAR(model.effective_rate(ni, 100000), cfg.peak_interaction_rate(),
              1.0);
}

TEST(TimingModel, PartialSlotPenalty) {
  const SystemConfig cfg = SystemConfig::paper_system();
  const TimingModel model(cfg);
  // ni = slots + 1 needs two passes: rate just over half of one pass.
  const std::size_t slots = cfg.board.i_slots();
  const double full = model.effective_rate(slots, 10000);
  const double spill = model.effective_rate(slots + 1, 10000);
  EXPECT_LT(spill, 0.55 * full);
}

TEST(TimingModel, JPartitioning) {
  const SystemConfig cfg = SystemConfig::paper_system();
  const TimingModel model(cfg);
  EXPECT_EQ(model.j_per_board(100), 50u);
  EXPECT_EQ(model.j_per_board(101), 51u);
  EXPECT_EQ(model.j_per_board(1), 1u);
  EXPECT_EQ(model.j_per_board(0), 0u);
}

TEST(TimingModel, BoardComputeTimeFormula) {
  const SystemConfig cfg = SystemConfig::paper_system();
  const TimingModel model(cfg);
  // One pass of 96 i against 15e6 j takes exactly 1 second of memory clock.
  EXPECT_NEAR(model.board_compute_time(96, 15000000), 1.0, 1e-12);
  // Two passes double it.
  EXPECT_NEAR(model.board_compute_time(97, 15000000), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(model.board_compute_time(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(model.board_compute_time(10, 0), 0.0);
}

TEST(TimingModel, TransferTimeHasLatencyAndBandwidth) {
  const SystemConfig cfg = SystemConfig::paper_system();
  const TimingModel model(cfg);
  EXPECT_DOUBLE_EQ(model.transfer_time(0), 0.0);
  const double t1 = model.transfer_time(1);
  const double t2 = model.transfer_time(70000000);  // ~1 s at 70 MB/s
  EXPECT_NEAR(t1, cfg.hib.latency_s, 1e-6);
  EXPECT_NEAR(t2, 1.0 + cfg.hib.latency_s, 1e-3);
}

TEST(TimingModel, ForceCallComposition) {
  const SystemConfig cfg = SystemConfig::paper_system();
  const TimingModel model(cfg);
  const auto with_j = model.force_call(192, 8192, true);
  const auto without_j = model.force_call(192, 8192, false);
  EXPECT_GT(with_j.dma_j, 0.0);
  EXPECT_DOUBLE_EQ(without_j.dma_j, 0.0);
  EXPECT_DOUBLE_EQ(with_j.compute, without_j.compute);
  EXPECT_NEAR(with_j.total(),
              with_j.dma_j + with_j.dma_i + with_j.compute + with_j.dma_result,
              1e-15);
}

TEST(TimingModel, PaperScaleGrapeTimeIsAboutTenThousandSeconds) {
  // Section 5 cross-check: 2.90e13 interactions at n_g ~ 2000 should cost
  // ~1e4 s of pipeline time on the model (the paper's total was 30,141 s
  // including host work).
  const SystemConfig cfg = SystemConfig::paper_system();
  const TimingModel model(cfg);
  const double groups = 2159038.0 / 2000.0 * 999.0;
  const double per_group = model.board_compute_time(
      2000, model.j_per_board(13431));
  const double total = per_group * groups;
  EXPECT_GT(total, 8.0e3);
  EXPECT_LT(total, 1.3e4);
}

TEST(HardwareAccount, Arithmetic) {
  HardwareAccount acct;
  acct.interactions = 1000;
  acct.modeled_compute = 2.0;
  acct.modeled_dma_j = 1.0;
  acct.modeled_dma_i = 0.5;
  acct.modeled_dma_result = 0.5;
  EXPECT_DOUBLE_EQ(acct.modeled_total(), 4.0);
  EXPECT_DOUBLE_EQ(acct.flops(), 38000.0);
  acct.reset();
  EXPECT_EQ(acct.interactions, 0u);
  EXPECT_DOUBLE_EQ(acct.modeled_total(), 0.0);
}

TEST(CostModel, ScalesWithBoards) {
  CostModel cost;
  cost.boards = 4;
  EXPECT_NEAR(cost.total_jpy(), 4 * 1.65e6 + 1.4e6, 1.0);
}

}  // namespace
