file(REMOVE_RECURSE
  "CMakeFiles/grape_driver_demo.dir/grape_driver_demo.cpp.o"
  "CMakeFiles/grape_driver_demo.dir/grape_driver_demo.cpp.o.d"
  "grape_driver_demo"
  "grape_driver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grape_driver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
