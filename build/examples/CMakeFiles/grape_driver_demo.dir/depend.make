# Empty dependencies file for grape_driver_demo.
# This may be replaced when dependencies are built.
