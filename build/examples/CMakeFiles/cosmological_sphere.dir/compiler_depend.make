# Empty compiler generated dependencies file for cosmological_sphere.
# This may be replaced when dependencies are built.
