file(REMOVE_RECURSE
  "CMakeFiles/cosmological_sphere.dir/cosmological_sphere.cpp.o"
  "CMakeFiles/cosmological_sphere.dir/cosmological_sphere.cpp.o.d"
  "cosmological_sphere"
  "cosmological_sphere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosmological_sphere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
