file(REMOVE_RECURSE
  "CMakeFiles/cold_collapse.dir/cold_collapse.cpp.o"
  "CMakeFiles/cold_collapse.dir/cold_collapse.cpp.o.d"
  "cold_collapse"
  "cold_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
