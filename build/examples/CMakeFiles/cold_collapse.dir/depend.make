# Empty dependencies file for cold_collapse.
# This may be replaced when dependencies are built.
