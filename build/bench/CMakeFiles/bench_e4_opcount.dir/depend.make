# Empty dependencies file for bench_e4_opcount.
# This may be replaced when dependencies are built.
