file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_opcount.dir/bench_e4_opcount.cpp.o"
  "CMakeFiles/bench_e4_opcount.dir/bench_e4_opcount.cpp.o.d"
  "bench_e4_opcount"
  "bench_e4_opcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_opcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
