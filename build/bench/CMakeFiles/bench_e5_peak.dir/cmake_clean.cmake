file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_peak.dir/bench_e5_peak.cpp.o"
  "CMakeFiles/bench_e5_peak.dir/bench_e5_peak.cpp.o.d"
  "bench_e5_peak"
  "bench_e5_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
