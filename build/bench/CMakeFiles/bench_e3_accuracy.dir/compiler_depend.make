# Empty compiler generated dependencies file for bench_e3_accuracy.
# This may be replaced when dependencies are built.
