# Empty dependencies file for bench_e1_section5.
# This may be replaced when dependencies are built.
