file(REMOVE_RECURSE
  "CMakeFiles/g5run.dir/g5run.cpp.o"
  "CMakeFiles/g5run.dir/g5run.cpp.o.d"
  "g5run"
  "g5run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
