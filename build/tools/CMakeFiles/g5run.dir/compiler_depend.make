# Empty compiler generated dependencies file for g5run.
# This may be replaced when dependencies are built.
