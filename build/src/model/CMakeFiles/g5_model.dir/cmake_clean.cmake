file(REMOVE_RECURSE
  "CMakeFiles/g5_model.dir/cosmology.cpp.o"
  "CMakeFiles/g5_model.dir/cosmology.cpp.o.d"
  "CMakeFiles/g5_model.dir/particles.cpp.o"
  "CMakeFiles/g5_model.dir/particles.cpp.o.d"
  "libg5_model.a"
  "libg5_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
