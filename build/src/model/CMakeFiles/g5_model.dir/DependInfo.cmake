
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cosmology.cpp" "src/model/CMakeFiles/g5_model.dir/cosmology.cpp.o" "gcc" "src/model/CMakeFiles/g5_model.dir/cosmology.cpp.o.d"
  "/root/repo/src/model/particles.cpp" "src/model/CMakeFiles/g5_model.dir/particles.cpp.o" "gcc" "src/model/CMakeFiles/g5_model.dir/particles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/g5_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/g5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
