# Empty dependencies file for g5_model.
# This may be replaced when dependencies are built.
