file(REMOVE_RECURSE
  "libg5_model.a"
)
