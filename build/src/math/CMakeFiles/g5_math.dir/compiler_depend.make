# Empty compiler generated dependencies file for g5_math.
# This may be replaced when dependencies are built.
