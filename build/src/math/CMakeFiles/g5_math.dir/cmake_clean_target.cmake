file(REMOVE_RECURSE
  "libg5_math.a"
)
