
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/fft.cpp" "src/math/CMakeFiles/g5_math.dir/fft.cpp.o" "gcc" "src/math/CMakeFiles/g5_math.dir/fft.cpp.o.d"
  "/root/repo/src/math/lns.cpp" "src/math/CMakeFiles/g5_math.dir/lns.cpp.o" "gcc" "src/math/CMakeFiles/g5_math.dir/lns.cpp.o.d"
  "/root/repo/src/math/rng.cpp" "src/math/CMakeFiles/g5_math.dir/rng.cpp.o" "gcc" "src/math/CMakeFiles/g5_math.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/g5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
