file(REMOVE_RECURSE
  "CMakeFiles/g5_math.dir/fft.cpp.o"
  "CMakeFiles/g5_math.dir/fft.cpp.o.d"
  "CMakeFiles/g5_math.dir/lns.cpp.o"
  "CMakeFiles/g5_math.dir/lns.cpp.o.d"
  "CMakeFiles/g5_math.dir/rng.cpp.o"
  "CMakeFiles/g5_math.dir/rng.cpp.o.d"
  "libg5_math.a"
  "libg5_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
