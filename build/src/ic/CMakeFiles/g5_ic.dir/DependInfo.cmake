
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ic/galaxy.cpp" "src/ic/CMakeFiles/g5_ic.dir/galaxy.cpp.o" "gcc" "src/ic/CMakeFiles/g5_ic.dir/galaxy.cpp.o.d"
  "/root/repo/src/ic/grf.cpp" "src/ic/CMakeFiles/g5_ic.dir/grf.cpp.o" "gcc" "src/ic/CMakeFiles/g5_ic.dir/grf.cpp.o.d"
  "/root/repo/src/ic/hernquist.cpp" "src/ic/CMakeFiles/g5_ic.dir/hernquist.cpp.o" "gcc" "src/ic/CMakeFiles/g5_ic.dir/hernquist.cpp.o.d"
  "/root/repo/src/ic/plummer.cpp" "src/ic/CMakeFiles/g5_ic.dir/plummer.cpp.o" "gcc" "src/ic/CMakeFiles/g5_ic.dir/plummer.cpp.o.d"
  "/root/repo/src/ic/power_spectrum.cpp" "src/ic/CMakeFiles/g5_ic.dir/power_spectrum.cpp.o" "gcc" "src/ic/CMakeFiles/g5_ic.dir/power_spectrum.cpp.o.d"
  "/root/repo/src/ic/uniform.cpp" "src/ic/CMakeFiles/g5_ic.dir/uniform.cpp.o" "gcc" "src/ic/CMakeFiles/g5_ic.dir/uniform.cpp.o.d"
  "/root/repo/src/ic/zeldovich.cpp" "src/ic/CMakeFiles/g5_ic.dir/zeldovich.cpp.o" "gcc" "src/ic/CMakeFiles/g5_ic.dir/zeldovich.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/g5_math.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/g5_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/g5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
