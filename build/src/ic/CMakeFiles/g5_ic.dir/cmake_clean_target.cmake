file(REMOVE_RECURSE
  "libg5_ic.a"
)
