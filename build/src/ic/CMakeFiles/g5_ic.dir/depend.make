# Empty dependencies file for g5_ic.
# This may be replaced when dependencies are built.
