file(REMOVE_RECURSE
  "CMakeFiles/g5_ic.dir/galaxy.cpp.o"
  "CMakeFiles/g5_ic.dir/galaxy.cpp.o.d"
  "CMakeFiles/g5_ic.dir/grf.cpp.o"
  "CMakeFiles/g5_ic.dir/grf.cpp.o.d"
  "CMakeFiles/g5_ic.dir/hernquist.cpp.o"
  "CMakeFiles/g5_ic.dir/hernquist.cpp.o.d"
  "CMakeFiles/g5_ic.dir/plummer.cpp.o"
  "CMakeFiles/g5_ic.dir/plummer.cpp.o.d"
  "CMakeFiles/g5_ic.dir/power_spectrum.cpp.o"
  "CMakeFiles/g5_ic.dir/power_spectrum.cpp.o.d"
  "CMakeFiles/g5_ic.dir/uniform.cpp.o"
  "CMakeFiles/g5_ic.dir/uniform.cpp.o.d"
  "CMakeFiles/g5_ic.dir/zeldovich.cpp.o"
  "CMakeFiles/g5_ic.dir/zeldovich.cpp.o.d"
  "libg5_ic.a"
  "libg5_ic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
