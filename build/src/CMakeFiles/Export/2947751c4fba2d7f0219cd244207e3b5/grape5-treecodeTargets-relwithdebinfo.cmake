#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "g5::util" for configuration "RelWithDebInfo"
set_property(TARGET g5::util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(g5::util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libg5_util.a"
  )

list(APPEND _cmake_import_check_targets g5::util )
list(APPEND _cmake_import_check_files_for_g5::util "${_IMPORT_PREFIX}/lib/libg5_util.a" )

# Import target "g5::math" for configuration "RelWithDebInfo"
set_property(TARGET g5::math APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(g5::math PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libg5_math.a"
  )

list(APPEND _cmake_import_check_targets g5::math )
list(APPEND _cmake_import_check_files_for_g5::math "${_IMPORT_PREFIX}/lib/libg5_math.a" )

# Import target "g5::model" for configuration "RelWithDebInfo"
set_property(TARGET g5::model APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(g5::model PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libg5_model.a"
  )

list(APPEND _cmake_import_check_targets g5::model )
list(APPEND _cmake_import_check_files_for_g5::model "${_IMPORT_PREFIX}/lib/libg5_model.a" )

# Import target "g5::ic" for configuration "RelWithDebInfo"
set_property(TARGET g5::ic APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(g5::ic PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libg5_ic.a"
  )

list(APPEND _cmake_import_check_targets g5::ic )
list(APPEND _cmake_import_check_files_for_g5::ic "${_IMPORT_PREFIX}/lib/libg5_ic.a" )

# Import target "g5::grape" for configuration "RelWithDebInfo"
set_property(TARGET g5::grape APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(g5::grape PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libg5_grape.a"
  )

list(APPEND _cmake_import_check_targets g5::grape )
list(APPEND _cmake_import_check_files_for_g5::grape "${_IMPORT_PREFIX}/lib/libg5_grape.a" )

# Import target "g5::tree" for configuration "RelWithDebInfo"
set_property(TARGET g5::tree APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(g5::tree PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libg5_tree.a"
  )

list(APPEND _cmake_import_check_targets g5::tree )
list(APPEND _cmake_import_check_files_for_g5::tree "${_IMPORT_PREFIX}/lib/libg5_tree.a" )

# Import target "g5::core" for configuration "RelWithDebInfo"
set_property(TARGET g5::core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(g5::core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libg5_core.a"
  )

list(APPEND _cmake_import_check_targets g5::core )
list(APPEND _cmake_import_check_files_for_g5::core "${_IMPORT_PREFIX}/lib/libg5_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
