
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/g5_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/blockstep.cpp" "src/core/CMakeFiles/g5_core.dir/blockstep.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/blockstep.cpp.o.d"
  "/root/repo/src/core/comoving.cpp" "src/core/CMakeFiles/g5_core.dir/comoving.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/comoving.cpp.o.d"
  "/root/repo/src/core/diagnostics.cpp" "src/core/CMakeFiles/g5_core.dir/diagnostics.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/diagnostics.cpp.o.d"
  "/root/repo/src/core/engine_grape_direct.cpp" "src/core/CMakeFiles/g5_core.dir/engine_grape_direct.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/engine_grape_direct.cpp.o.d"
  "/root/repo/src/core/engine_grape_tree.cpp" "src/core/CMakeFiles/g5_core.dir/engine_grape_tree.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/engine_grape_tree.cpp.o.d"
  "/root/repo/src/core/engine_host_direct.cpp" "src/core/CMakeFiles/g5_core.dir/engine_host_direct.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/engine_host_direct.cpp.o.d"
  "/root/repo/src/core/engine_host_tree.cpp" "src/core/CMakeFiles/g5_core.dir/engine_host_tree.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/engine_host_tree.cpp.o.d"
  "/root/repo/src/core/integrator.cpp" "src/core/CMakeFiles/g5_core.dir/integrator.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/integrator.cpp.o.d"
  "/root/repo/src/core/perf.cpp" "src/core/CMakeFiles/g5_core.dir/perf.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/perf.cpp.o.d"
  "/root/repo/src/core/render.cpp" "src/core/CMakeFiles/g5_core.dir/render.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/render.cpp.o.d"
  "/root/repo/src/core/simulation.cpp" "src/core/CMakeFiles/g5_core.dir/simulation.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/simulation.cpp.o.d"
  "/root/repo/src/core/snapshot.cpp" "src/core/CMakeFiles/g5_core.dir/snapshot.cpp.o" "gcc" "src/core/CMakeFiles/g5_core.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grape/CMakeFiles/g5_grape.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/g5_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/g5_model.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/g5_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/g5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
