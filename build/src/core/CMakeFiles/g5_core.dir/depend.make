# Empty dependencies file for g5_core.
# This may be replaced when dependencies are built.
