file(REMOVE_RECURSE
  "libg5_core.a"
)
