file(REMOVE_RECURSE
  "CMakeFiles/g5_core.dir/analysis.cpp.o"
  "CMakeFiles/g5_core.dir/analysis.cpp.o.d"
  "CMakeFiles/g5_core.dir/blockstep.cpp.o"
  "CMakeFiles/g5_core.dir/blockstep.cpp.o.d"
  "CMakeFiles/g5_core.dir/comoving.cpp.o"
  "CMakeFiles/g5_core.dir/comoving.cpp.o.d"
  "CMakeFiles/g5_core.dir/diagnostics.cpp.o"
  "CMakeFiles/g5_core.dir/diagnostics.cpp.o.d"
  "CMakeFiles/g5_core.dir/engine_grape_direct.cpp.o"
  "CMakeFiles/g5_core.dir/engine_grape_direct.cpp.o.d"
  "CMakeFiles/g5_core.dir/engine_grape_tree.cpp.o"
  "CMakeFiles/g5_core.dir/engine_grape_tree.cpp.o.d"
  "CMakeFiles/g5_core.dir/engine_host_direct.cpp.o"
  "CMakeFiles/g5_core.dir/engine_host_direct.cpp.o.d"
  "CMakeFiles/g5_core.dir/engine_host_tree.cpp.o"
  "CMakeFiles/g5_core.dir/engine_host_tree.cpp.o.d"
  "CMakeFiles/g5_core.dir/integrator.cpp.o"
  "CMakeFiles/g5_core.dir/integrator.cpp.o.d"
  "CMakeFiles/g5_core.dir/perf.cpp.o"
  "CMakeFiles/g5_core.dir/perf.cpp.o.d"
  "CMakeFiles/g5_core.dir/render.cpp.o"
  "CMakeFiles/g5_core.dir/render.cpp.o.d"
  "CMakeFiles/g5_core.dir/simulation.cpp.o"
  "CMakeFiles/g5_core.dir/simulation.cpp.o.d"
  "CMakeFiles/g5_core.dir/snapshot.cpp.o"
  "CMakeFiles/g5_core.dir/snapshot.cpp.o.d"
  "libg5_core.a"
  "libg5_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
