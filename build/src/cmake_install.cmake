# Install script for directory: /root/repo/src

# Set the install prefix
if(NOT DEFINED CMAKE_INSTALL_PREFIX)
  set(CMAKE_INSTALL_PREFIX "/usr/local")
endif()
string(REGEX REPLACE "/$" "" CMAKE_INSTALL_PREFIX "${CMAKE_INSTALL_PREFIX}")

# Set the install configuration name.
if(NOT DEFINED CMAKE_INSTALL_CONFIG_NAME)
  if(BUILD_TYPE)
    string(REGEX REPLACE "^[^A-Za-z0-9_]+" ""
           CMAKE_INSTALL_CONFIG_NAME "${BUILD_TYPE}")
  else()
    set(CMAKE_INSTALL_CONFIG_NAME "RelWithDebInfo")
  endif()
  message(STATUS "Install configuration: \"${CMAKE_INSTALL_CONFIG_NAME}\"")
endif()

# Set the component getting installed.
if(NOT CMAKE_INSTALL_COMPONENT)
  if(COMPONENT)
    message(STATUS "Install component: \"${COMPONENT}\"")
    set(CMAKE_INSTALL_COMPONENT "${COMPONENT}")
  else()
    set(CMAKE_INSTALL_COMPONENT)
  endif()
endif()

# Install shared libraries without execute permission?
if(NOT DEFINED CMAKE_INSTALL_SO_NO_EXE)
  set(CMAKE_INSTALL_SO_NO_EXE "1")
endif()

# Is this installation the result of a crosscompile?
if(NOT DEFINED CMAKE_CROSSCOMPILING)
  set(CMAKE_CROSSCOMPILING "FALSE")
endif()

# Set default install directory permissions.
if(NOT DEFINED CMAKE_OBJDUMP)
  set(CMAKE_OBJDUMP "/usr/bin/objdump")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/util/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/math/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/model/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/ic/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/grape/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/tree/cmake_install.cmake")
endif()

if(NOT CMAKE_INSTALL_LOCAL_ONLY)
  # Include the install script for the subdirectory.
  include("/root/repo/build/src/core/cmake_install.cmake")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/util/libg5_util.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/math/libg5_math.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/model/libg5_model.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/ic/libg5_ic.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/grape/libg5_grape.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/tree/libg5_tree.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib" TYPE STATIC_LIBRARY FILES "/root/repo/build/src/core/libg5_core.a")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/include/grape5-treecode" TYPE DIRECTORY FILES "/root/repo/src/" FILES_MATCHING REGEX "/[^/]*\\.hpp$")
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  if(EXISTS "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/grape5-treecode/grape5-treecodeTargets.cmake")
    file(DIFFERENT _cmake_export_file_changed FILES
         "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/grape5-treecode/grape5-treecodeTargets.cmake"
         "/root/repo/build/src/CMakeFiles/Export/2947751c4fba2d7f0219cd244207e3b5/grape5-treecodeTargets.cmake")
    if(_cmake_export_file_changed)
      file(GLOB _cmake_old_config_files "$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/grape5-treecode/grape5-treecodeTargets-*.cmake")
      if(_cmake_old_config_files)
        string(REPLACE ";" ", " _cmake_old_config_files_text "${_cmake_old_config_files}")
        message(STATUS "Old export file \"$ENV{DESTDIR}${CMAKE_INSTALL_PREFIX}/lib/cmake/grape5-treecode/grape5-treecodeTargets.cmake\" will be replaced.  Removing files [${_cmake_old_config_files_text}].")
        unset(_cmake_old_config_files_text)
        file(REMOVE ${_cmake_old_config_files})
      endif()
      unset(_cmake_old_config_files)
    endif()
    unset(_cmake_export_file_changed)
  endif()
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/grape5-treecode" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/2947751c4fba2d7f0219cd244207e3b5/grape5-treecodeTargets.cmake")
  if(CMAKE_INSTALL_CONFIG_NAME MATCHES "^([Rr][Ee][Ll][Ww][Ii][Tt][Hh][Dd][Ee][Bb][Ii][Nn][Ff][Oo])$")
    file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/grape5-treecode" TYPE FILE FILES "/root/repo/build/src/CMakeFiles/Export/2947751c4fba2d7f0219cd244207e3b5/grape5-treecodeTargets-relwithdebinfo.cmake")
  endif()
endif()

if(CMAKE_INSTALL_COMPONENT STREQUAL "Unspecified" OR NOT CMAKE_INSTALL_COMPONENT)
  file(INSTALL DESTINATION "${CMAKE_INSTALL_PREFIX}/lib/cmake/grape5-treecode" TYPE FILE FILES
    "/root/repo/build/src/grape5-treecodeConfig.cmake"
    "/root/repo/build/src/grape5-treecodeConfigVersion.cmake"
    )
endif()

