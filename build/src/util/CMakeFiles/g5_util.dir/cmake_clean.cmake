file(REMOVE_RECURSE
  "CMakeFiles/g5_util.dir/log.cpp.o"
  "CMakeFiles/g5_util.dir/log.cpp.o.d"
  "CMakeFiles/g5_util.dir/options.cpp.o"
  "CMakeFiles/g5_util.dir/options.cpp.o.d"
  "CMakeFiles/g5_util.dir/stats.cpp.o"
  "CMakeFiles/g5_util.dir/stats.cpp.o.d"
  "CMakeFiles/g5_util.dir/table.cpp.o"
  "CMakeFiles/g5_util.dir/table.cpp.o.d"
  "libg5_util.a"
  "libg5_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
