# Empty dependencies file for g5_util.
# This may be replaced when dependencies are built.
