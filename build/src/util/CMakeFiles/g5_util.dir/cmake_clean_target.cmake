file(REMOVE_RECURSE
  "libg5_util.a"
)
