include("${CMAKE_CURRENT_LIST_DIR}/grape5-treecodeTargets.cmake")
