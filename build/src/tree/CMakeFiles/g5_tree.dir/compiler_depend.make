# Empty compiler generated dependencies file for g5_tree.
# This may be replaced when dependencies are built.
