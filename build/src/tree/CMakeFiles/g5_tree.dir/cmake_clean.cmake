file(REMOVE_RECURSE
  "CMakeFiles/g5_tree.dir/groupwalk.cpp.o"
  "CMakeFiles/g5_tree.dir/groupwalk.cpp.o.d"
  "CMakeFiles/g5_tree.dir/tree.cpp.o"
  "CMakeFiles/g5_tree.dir/tree.cpp.o.d"
  "CMakeFiles/g5_tree.dir/walk.cpp.o"
  "CMakeFiles/g5_tree.dir/walk.cpp.o.d"
  "libg5_tree.a"
  "libg5_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
