file(REMOVE_RECURSE
  "libg5_tree.a"
)
