
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grape/board.cpp" "src/grape/CMakeFiles/g5_grape.dir/board.cpp.o" "gcc" "src/grape/CMakeFiles/g5_grape.dir/board.cpp.o.d"
  "/root/repo/src/grape/cycle_sim.cpp" "src/grape/CMakeFiles/g5_grape.dir/cycle_sim.cpp.o" "gcc" "src/grape/CMakeFiles/g5_grape.dir/cycle_sim.cpp.o.d"
  "/root/repo/src/grape/driver.cpp" "src/grape/CMakeFiles/g5_grape.dir/driver.cpp.o" "gcc" "src/grape/CMakeFiles/g5_grape.dir/driver.cpp.o.d"
  "/root/repo/src/grape/host_reference.cpp" "src/grape/CMakeFiles/g5_grape.dir/host_reference.cpp.o" "gcc" "src/grape/CMakeFiles/g5_grape.dir/host_reference.cpp.o.d"
  "/root/repo/src/grape/pipeline.cpp" "src/grape/CMakeFiles/g5_grape.dir/pipeline.cpp.o" "gcc" "src/grape/CMakeFiles/g5_grape.dir/pipeline.cpp.o.d"
  "/root/repo/src/grape/selftest.cpp" "src/grape/CMakeFiles/g5_grape.dir/selftest.cpp.o" "gcc" "src/grape/CMakeFiles/g5_grape.dir/selftest.cpp.o.d"
  "/root/repo/src/grape/system.cpp" "src/grape/CMakeFiles/g5_grape.dir/system.cpp.o" "gcc" "src/grape/CMakeFiles/g5_grape.dir/system.cpp.o.d"
  "/root/repo/src/grape/timing.cpp" "src/grape/CMakeFiles/g5_grape.dir/timing.cpp.o" "gcc" "src/grape/CMakeFiles/g5_grape.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/g5_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/g5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
