file(REMOVE_RECURSE
  "CMakeFiles/g5_grape.dir/board.cpp.o"
  "CMakeFiles/g5_grape.dir/board.cpp.o.d"
  "CMakeFiles/g5_grape.dir/cycle_sim.cpp.o"
  "CMakeFiles/g5_grape.dir/cycle_sim.cpp.o.d"
  "CMakeFiles/g5_grape.dir/driver.cpp.o"
  "CMakeFiles/g5_grape.dir/driver.cpp.o.d"
  "CMakeFiles/g5_grape.dir/host_reference.cpp.o"
  "CMakeFiles/g5_grape.dir/host_reference.cpp.o.d"
  "CMakeFiles/g5_grape.dir/pipeline.cpp.o"
  "CMakeFiles/g5_grape.dir/pipeline.cpp.o.d"
  "CMakeFiles/g5_grape.dir/selftest.cpp.o"
  "CMakeFiles/g5_grape.dir/selftest.cpp.o.d"
  "CMakeFiles/g5_grape.dir/system.cpp.o"
  "CMakeFiles/g5_grape.dir/system.cpp.o.d"
  "CMakeFiles/g5_grape.dir/timing.cpp.o"
  "CMakeFiles/g5_grape.dir/timing.cpp.o.d"
  "libg5_grape.a"
  "libg5_grape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g5_grape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
