file(REMOVE_RECURSE
  "libg5_grape.a"
)
