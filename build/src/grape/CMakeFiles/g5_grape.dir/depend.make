# Empty dependencies file for g5_grape.
# This may be replaced when dependencies are built.
