
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_analysis_test.cpp" "tests/CMakeFiles/g5_tests.dir/core_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/core_analysis_test.cpp.o.d"
  "/root/repo/tests/core_blockstep_test.cpp" "tests/CMakeFiles/g5_tests.dir/core_blockstep_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/core_blockstep_test.cpp.o.d"
  "/root/repo/tests/core_comoving_test.cpp" "tests/CMakeFiles/g5_tests.dir/core_comoving_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/core_comoving_test.cpp.o.d"
  "/root/repo/tests/core_engine_test.cpp" "tests/CMakeFiles/g5_tests.dir/core_engine_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/core_engine_test.cpp.o.d"
  "/root/repo/tests/core_engine_variants_test.cpp" "tests/CMakeFiles/g5_tests.dir/core_engine_variants_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/core_engine_variants_test.cpp.o.d"
  "/root/repo/tests/core_integrator_test.cpp" "tests/CMakeFiles/g5_tests.dir/core_integrator_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/core_integrator_test.cpp.o.d"
  "/root/repo/tests/core_perf_test.cpp" "tests/CMakeFiles/g5_tests.dir/core_perf_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/core_perf_test.cpp.o.d"
  "/root/repo/tests/core_simulation_test.cpp" "tests/CMakeFiles/g5_tests.dir/core_simulation_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/core_simulation_test.cpp.o.d"
  "/root/repo/tests/core_snapshot_render_test.cpp" "tests/CMakeFiles/g5_tests.dir/core_snapshot_render_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/core_snapshot_render_test.cpp.o.d"
  "/root/repo/tests/determinism_test.cpp" "tests/CMakeFiles/g5_tests.dir/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/determinism_test.cpp.o.d"
  "/root/repo/tests/golden_regression_test.cpp" "tests/CMakeFiles/g5_tests.dir/golden_regression_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/golden_regression_test.cpp.o.d"
  "/root/repo/tests/grape_board_test.cpp" "tests/CMakeFiles/g5_tests.dir/grape_board_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/grape_board_test.cpp.o.d"
  "/root/repo/tests/grape_cycle_sim_test.cpp" "tests/CMakeFiles/g5_tests.dir/grape_cycle_sim_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/grape_cycle_sim_test.cpp.o.d"
  "/root/repo/tests/grape_driver_behavior_test.cpp" "tests/CMakeFiles/g5_tests.dir/grape_driver_behavior_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/grape_driver_behavior_test.cpp.o.d"
  "/root/repo/tests/grape_driver_test.cpp" "tests/CMakeFiles/g5_tests.dir/grape_driver_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/grape_driver_test.cpp.o.d"
  "/root/repo/tests/grape_pipeline_test.cpp" "tests/CMakeFiles/g5_tests.dir/grape_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/grape_pipeline_test.cpp.o.d"
  "/root/repo/tests/grape_property_test.cpp" "tests/CMakeFiles/g5_tests.dir/grape_property_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/grape_property_test.cpp.o.d"
  "/root/repo/tests/grape_selftest_test.cpp" "tests/CMakeFiles/g5_tests.dir/grape_selftest_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/grape_selftest_test.cpp.o.d"
  "/root/repo/tests/grape_system_test.cpp" "tests/CMakeFiles/g5_tests.dir/grape_system_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/grape_system_test.cpp.o.d"
  "/root/repo/tests/grape_timing_test.cpp" "tests/CMakeFiles/g5_tests.dir/grape_timing_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/grape_timing_test.cpp.o.d"
  "/root/repo/tests/ic_grf_test.cpp" "tests/CMakeFiles/g5_tests.dir/ic_grf_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/ic_grf_test.cpp.o.d"
  "/root/repo/tests/ic_hernquist_test.cpp" "tests/CMakeFiles/g5_tests.dir/ic_hernquist_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/ic_hernquist_test.cpp.o.d"
  "/root/repo/tests/ic_plummer_test.cpp" "tests/CMakeFiles/g5_tests.dir/ic_plummer_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/ic_plummer_test.cpp.o.d"
  "/root/repo/tests/ic_power_test.cpp" "tests/CMakeFiles/g5_tests.dir/ic_power_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/ic_power_test.cpp.o.d"
  "/root/repo/tests/ic_uniform_galaxy_test.cpp" "tests/CMakeFiles/g5_tests.dir/ic_uniform_galaxy_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/ic_uniform_galaxy_test.cpp.o.d"
  "/root/repo/tests/ic_zeldovich_test.cpp" "tests/CMakeFiles/g5_tests.dir/ic_zeldovich_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/ic_zeldovich_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/g5_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/math_fft_test.cpp" "tests/CMakeFiles/g5_tests.dir/math_fft_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/math_fft_test.cpp.o.d"
  "/root/repo/tests/math_fixed_test.cpp" "tests/CMakeFiles/g5_tests.dir/math_fixed_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/math_fixed_test.cpp.o.d"
  "/root/repo/tests/math_lns_test.cpp" "tests/CMakeFiles/g5_tests.dir/math_lns_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/math_lns_test.cpp.o.d"
  "/root/repo/tests/math_morton_test.cpp" "tests/CMakeFiles/g5_tests.dir/math_morton_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/math_morton_test.cpp.o.d"
  "/root/repo/tests/math_rng_test.cpp" "tests/CMakeFiles/g5_tests.dir/math_rng_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/math_rng_test.cpp.o.d"
  "/root/repo/tests/math_vec3_test.cpp" "tests/CMakeFiles/g5_tests.dir/math_vec3_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/math_vec3_test.cpp.o.d"
  "/root/repo/tests/misc_coverage_test.cpp" "tests/CMakeFiles/g5_tests.dir/misc_coverage_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/misc_coverage_test.cpp.o.d"
  "/root/repo/tests/model_cosmology_test.cpp" "tests/CMakeFiles/g5_tests.dir/model_cosmology_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/model_cosmology_test.cpp.o.d"
  "/root/repo/tests/model_particles_test.cpp" "tests/CMakeFiles/g5_tests.dir/model_particles_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/model_particles_test.cpp.o.d"
  "/root/repo/tests/tree_build_test.cpp" "tests/CMakeFiles/g5_tests.dir/tree_build_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/tree_build_test.cpp.o.d"
  "/root/repo/tests/tree_groupwalk_test.cpp" "tests/CMakeFiles/g5_tests.dir/tree_groupwalk_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/tree_groupwalk_test.cpp.o.d"
  "/root/repo/tests/tree_mac_test.cpp" "tests/CMakeFiles/g5_tests.dir/tree_mac_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/tree_mac_test.cpp.o.d"
  "/root/repo/tests/tree_property_test.cpp" "tests/CMakeFiles/g5_tests.dir/tree_property_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/tree_property_test.cpp.o.d"
  "/root/repo/tests/tree_quadrupole_test.cpp" "tests/CMakeFiles/g5_tests.dir/tree_quadrupole_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/tree_quadrupole_test.cpp.o.d"
  "/root/repo/tests/tree_walk_test.cpp" "tests/CMakeFiles/g5_tests.dir/tree_walk_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/tree_walk_test.cpp.o.d"
  "/root/repo/tests/util_log_test.cpp" "tests/CMakeFiles/g5_tests.dir/util_log_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/util_log_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/g5_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/g5_tests.dir/util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ic/CMakeFiles/g5_ic.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/g5_core.dir/DependInfo.cmake"
  "/root/repo/build/src/grape/CMakeFiles/g5_grape.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/g5_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/g5_model.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/g5_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/g5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
